//! Observational equivalence: `ForkMode::OnDemand` vs `ForkMode::Cow`.
//!
//! Seed-driven property test (failures name the seed and replay
//! exactly). Two worlds run the same script: build a parent with random
//! mappings and writes, fork it — world A with COW page-table copying,
//! world B with on-demand shared subtrees — then apply an identical
//! random schedule of writes, reads, mprotects and unmaps to both. At
//! every read the two worlds must observe identical bytes, at the end
//! every mapped page must agree, and tearing everything down must return
//! both frame allocators to zero — so the deferred page-table copy can
//! neither change what a process sees nor leak or double-free a frame
//! reference.

use fpr_mem::address_space::ForkMode;
use fpr_mem::cost::{CostModel, Cycles};
use fpr_mem::phys::PhysMemory;
use fpr_mem::tlb::TlbModel;
use fpr_mem::vma::{Prot, VmArea, VmaKind};
use fpr_mem::{AddressSpace, Vpn};
use fpr_rng::Rng;

const CASES: u64 = 48;
const SPAN: u64 = 1200; // covers >2 leaf subtrees, so unshares happen

#[derive(Debug, Clone)]
enum Op {
    /// Write `val` to `vpn` in the parent (0) or child (1).
    Write { who: usize, vpn: u64, val: u64 },
    /// Read `vpn` in the parent or child; both worlds must agree.
    Read { who: usize, vpn: u64 },
    /// Drop write permission on a range (forces unshares on shared
    /// subtrees in world B).
    ProtectRo { who: usize, start: u64, pages: u64 },
    /// Unmap a range.
    Unmap { who: usize, start: u64, pages: u64 },
}

fn gen_op(rng: &mut Rng) -> Op {
    let who = rng.gen_below(2) as usize;
    match rng.gen_below(8) {
        0..=2 => Op::Write {
            who,
            vpn: rng.gen_below(SPAN),
            val: rng.gen_u64(),
        },
        3..=5 => Op::Read {
            who,
            vpn: rng.gen_below(SPAN),
        },
        6 => Op::ProtectRo {
            who,
            start: rng.gen_below(SPAN),
            pages: rng.gen_range(1, 64),
        },
        _ => Op::Unmap {
            who,
            start: rng.gen_below(SPAN),
            pages: rng.gen_range(1, 64),
        },
    }
}

struct World {
    phys: PhysMemory,
    cycles: Cycles,
    tlb: TlbModel,
    spaces: Vec<AddressSpace>, // [parent, child]
}

impl World {
    fn build(seed: u64, mode: ForkMode) -> World {
        let mut rng = Rng::seed_from_u64(seed);
        let mut w = World {
            phys: PhysMemory::new(8192, CostModel::default()),
            cycles: Cycles::new(),
            tlb: TlbModel::new(),
            spaces: vec![AddressSpace::new()],
        };
        // Parent: a few VMAs across the span, then scattered writes so
        // fork inherits a mix of resident and absent pages.
        for _ in 0..rng.gen_range(2, 6) {
            let start = rng.gen_below(SPAN - 64);
            let pages = rng.gen_range(8, 64);
            let _ = w.spaces[0].mmap(
                VmArea::anon(Vpn(start), pages, Prot::RW, VmaKind::Mmap),
                &mut w.phys,
                &mut w.cycles,
            );
        }
        for _ in 0..rng.gen_range(10, 80) {
            let vpn = Vpn(rng.gen_below(SPAN));
            let val = rng.gen_u64();
            let _ = w.spaces[0].write(vpn, val, &mut w.phys, &mut w.cycles, &mut w.tlb, 1);
        }
        let child = AddressSpace::fork_from(
            &mut w.spaces[0],
            mode,
            &mut w.phys,
            &mut w.cycles,
            &mut w.tlb,
            1,
        )
        .expect("fork fits");
        w.spaces.push(child);
        w
    }

    fn apply(&mut self, op: &Op) -> Result<Option<u64>, fpr_mem::MemError> {
        match op {
            Op::Write { who, vpn, val } => {
                let s = &mut self.spaces[*who];
                s.write(Vpn(*vpn), *val, &mut self.phys, &mut self.cycles, &mut self.tlb, 1)
                    .map(|_| None)
            }
            Op::Read { who, vpn } => self.spaces[*who]
                .read(Vpn(*vpn), &mut self.phys, &mut self.cycles)
                .map(|(v, _)| Some(v)),
            Op::ProtectRo { who, start, pages } => self.spaces[*who]
                .mprotect(
                    Vpn(*start),
                    *pages,
                    Prot::R,
                    &mut self.cycles,
                    &mut self.phys,
                    &mut self.tlb,
                    1,
                )
                .map(|()| None),
            Op::Unmap { who, start, pages } => self.spaces[*who]
                .munmap(
                    Vpn(*start),
                    *pages,
                    &mut self.phys,
                    &mut self.cycles,
                    &mut self.tlb,
                    1,
                )
                .map(|_| None),
        }
    }

    fn observed(&self, who: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for vpn in 0..SPAN {
            if let Ok(v) = self.spaces[who].observe(Vpn(vpn), &self.phys) {
                out.push((vpn, v));
            }
        }
        out
    }
}

/// Same script, both fork modes: identical observations, clean teardown.
#[test]
fn on_demand_fork_observationally_equal_to_cow() {
    for case in 0..CASES {
        let seed = 0xE0_0000 + case;
        let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
        let ops: Vec<Op> = (0..rng.gen_range(20, 120)).map(|_| gen_op(&mut rng)).collect();

        let mut cow = World::build(seed, ForkMode::Cow);
        let mut odf = World::build(seed, ForkMode::OnDemand);

        for (i, op) in ops.iter().enumerate() {
            let a = cow.apply(op);
            let b = odf.apply(op);
            match (&a, &b) {
                (Ok(x), Ok(y)) => assert_eq!(
                    x, y,
                    "case {case} op {i} ({op:?}): worlds observed different values"
                ),
                (Err(_), Err(_)) => {} // both refused (e.g. unmapped read)
                _ => panic!("case {case} op {i} ({op:?}): {a:?} vs {b:?} diverged"),
            }
        }

        // Every page either world can observe must match, in both spaces.
        for who in 0..2 {
            assert_eq!(
                cow.observed(who),
                odf.observed(who),
                "case {case}: space {who} diverged after the schedule"
            );
        }

        // Teardown balances refcounts in both worlds: no frame survives,
        // so sharing subtrees neither leaked nor double-freed.
        for w in [&mut cow, &mut odf] {
            for mut s in std::mem::take(&mut w.spaces) {
                s.destroy(&mut w.phys, &mut w.cycles);
            }
            assert_eq!(
                w.phys.used_frames(),
                0,
                "case {case}: frames survived teardown"
            );
        }
    }
}
