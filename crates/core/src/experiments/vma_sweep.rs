//! E2b: fork is O(mappings), not just O(pages).
//!
//! Two parents with the *same* resident footprint but different VMA
//! counts fork at different costs: every mapping record must be cloned
//! and its range walked. Modern address spaces are mapping-heavy
//! (shared libraries, guard pages, arenas — thousands of VMAs), so this
//! term matters even when page counts are modest.

use crate::os::{Os, OsConfig};
use fpr_mem::{ForkMode, CYCLES_PER_US};
use fpr_trace::{FigureData, ProcessShape, Series};

/// Measures fork cost for a parent with `pages` resident spread over
/// `vmas` mappings.
pub fn measure(pages: u64, vmas: u64) -> u64 {
    let mut os = Os::boot(OsConfig {
        machine: super::fig1::machine_for(pages),
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape {
            heap_pages: pages,
            vma_count: vmas,
            extra_fds: 0,
            extra_threads: 0,
        })
        .expect("parent fits");
    let (_, cycles) = os.measure(|os| os.fork_stats(parent, ForkMode::Cow).expect("fork"));
    cycles
}

/// Sweeps VMA counts at a fixed footprint.
pub fn run(pages: u64, vma_counts: &[u64]) -> FigureData {
    let mut fig = FigureData::new(
        "fig_vma_sweep",
        "fork cost vs mapping count at fixed footprint",
        "VMAs",
        "fork us",
    );
    let mut s = Series::new("fork");
    for &v in vma_counts {
        s.push(v as f64, measure(pages, v) as f64 / CYCLES_PER_US as f64);
    }
    fig.series = vec![s];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_vmas_cost_more_at_same_footprint() {
        let few = measure(2048, 4);
        let many = measure(2048, 512);
        assert!(
            many > few,
            "512 VMAs {many} must cost more than 4 VMAs {few}"
        );
        // The delta is dominated by the per-VMA clone cost.
        let cost = fpr_mem::CostModel::default();
        let delta = many - few;
        let expected_min = (512 - 4) * cost.vma_clone;
        assert!(
            delta >= expected_min,
            "delta {delta} < VMA-clone floor {expected_min}"
        );
    }

    #[test]
    fn sweep_is_monotone() {
        let fig = run(1024, &[1, 16, 256]);
        let pts = &fig.series[0].points;
        assert!(pts.windows(2).all(|w| w[1].y >= w[0].y));
    }
}
