//! E8b: fork bombs and their containment.
//!
//! fork's zero-argument simplicity makes the classic `:(){ :|:& };:`
//! one-liner possible; the kernel's defence is `RLIMIT_NPROC`. The
//! experiment detonates a breadth-first fork bomb under different limits
//! and records how many processes exist when the bomb fizzles.

use crate::os::{Os, OsConfig};
use fpr_kernel::{Errno, MachineConfig, Pid, Resource, Rlimit};
use fpr_trace::TableData;
use std::collections::VecDeque;

/// Result of one detonation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BombOutcome {
    /// The `RLIMIT_NPROC` soft limit in force (`u64::MAX` = unlimited).
    pub nproc_limit: u64,
    /// Processes successfully created by the bomb.
    pub created: u64,
    /// The errno that finally stopped it.
    pub stopped_by: String,
}

/// Detonates a BFS fork bomb from a fresh process under `limit`.
///
/// `max_pids` bounds the experiment when the limit is unlimited.
pub fn detonate(limit: u64, max_pids: u32) -> BombOutcome {
    let mut os = Os::boot(OsConfig {
        machine: MachineConfig {
            max_pids,
            ..MachineConfig::default()
        },
        ..Default::default()
    });
    let root = os.kernel.allocate_process(os.init, "bomb").expect("alloc");
    os.kernel
        .process_mut(root)
        .expect("proc")
        .rlimits
        .set(Resource::Nproc, Rlimit::both(limit));

    let mut queue: VecDeque<Pid> = VecDeque::from([root]);
    let mut created = 0u64;
    let stopped_by;
    'outer: loop {
        let Some(p) = queue.pop_front() else {
            stopped_by = "queue drained".to_string();
            break 'outer;
        };
        // Each bomb process forks twice (": | :").
        for _ in 0..2 {
            match os.fork(p) {
                Ok(c) => {
                    created += 1;
                    queue.push_back(c);
                }
                Err(Errno::Eagain) => {
                    stopped_by = "EAGAIN".to_string();
                    break 'outer;
                }
                Err(e) => {
                    stopped_by = format!("{e}");
                    break 'outer;
                }
            }
        }
        queue.push_back(p);
    }
    BombOutcome {
        nproc_limit: limit,
        created,
        stopped_by,
    }
}

/// Runs the limit sweep.
pub fn run(limits: &[u64], max_pids: u32) -> TableData {
    let mut t = TableData::new(
        "tab_forkbomb",
        "fork-bomb containment by RLIMIT_NPROC",
        &["nproc_limit", "processes_created", "stopped_by"],
    );
    for &l in limits {
        let o = detonate(l, max_pids);
        let shown = if l == u64::MAX {
            "unlimited".to_string()
        } else {
            l.to_string()
        };
        t.push_row(vec![shown, o.created.to_string(), o.stopped_by]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_bounds_the_bomb() {
        let o = detonate(16, 4096);
        // init + root already count 2 toward uid 0's nproc.
        assert!(o.created <= 16, "created {}", o.created);
        assert_eq!(o.stopped_by, "EAGAIN");
    }

    #[test]
    fn bigger_limit_bigger_bomb() {
        let small = detonate(16, 4096);
        let big = detonate(128, 4096);
        assert!(big.created > small.created * 4);
    }

    /// Regression: the EAGAIN that stops a fork bomb must itself be
    /// transactional. The failing fork leaves the kernel at the pre-call
    /// baseline with invariants intact, and reaping one bomb child makes
    /// the very next fork succeed — no half-created process wedges the
    /// limit.
    #[test]
    fn the_fizzle_is_clean() {
        let mut os = Os::boot(OsConfig::default());
        let root = os.kernel.allocate_process(os.init, "bomb").expect("alloc");
        os.kernel
            .process_mut(root)
            .expect("proc")
            .rlimits
            .set(Resource::Nproc, Rlimit::both(8));
        let mut children = Vec::new();
        let base = loop {
            let base = os.kernel.baseline();
            match os.fork(root) {
                Ok(c) => children.push(c),
                Err(e) => {
                    assert_eq!(e, Errno::Eagain, "containment errno");
                    break base;
                }
            }
            assert!(children.len() < 64, "limit never enforced");
        };
        if let Err(v) = os.kernel.leak_check(&base) {
            panic!("EAGAIN fork left state behind:\n  {}", v.join("\n  "));
        }
        if let Err(v) = os.kernel.check_invariants() {
            panic!("EAGAIN fork broke invariants:\n  {}", v.join("\n  "));
        }
        // Reap one child: the limit frees and fork works again.
        let victim = children.pop().expect("bomb made children");
        os.kernel.exit(victim, 0).expect("exit");
        os.kernel.waitpid(root, Some(victim)).expect("reap");
        os.fork(root).expect("fork succeeds once a slot frees");
    }

    #[test]
    fn unlimited_hits_pid_exhaustion() {
        let o = detonate(u64::MAX, 256);
        assert_eq!(o.stopped_by, "EAGAIN", "PID allocator is the last line");
        assert!(o.created >= 250, "should approach max_pids: {}", o.created);
    }
}
