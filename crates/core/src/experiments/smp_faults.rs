//! E17: fig_cell_failure — the SMP machine under concurrent fault
//! injection and cell fail-stop.
//!
//! E16 showed the core *scales*; E17 shows it stays *correct* while
//! failing. Two arms:
//!
//! * **faultsweep_storm** — [`THREADS`] real OS threads storm the
//!   machine with the E16 creation mix, but every creation op runs
//!   under its own per-op [`FaultPlan::random`] derived from one root
//!   seed (SplitMix64 over `(cell seed, op index)`), so injections land
//!   concurrently on every thread at whatever [`FaultSite`]s the ops
//!   cross. Containment is checked at three radii: the failed op
//!   returns a clean `Err` with no half-made child, the injured cell
//!   passes `check_invariants` immediately (under its own mm lock,
//!   before the next op), and after the storm the whole machine passes
//!   [`SmpOs::check_quiesced`] — per-cell leak checks plus machine-wide
//!   frame conservation. Site coverage is aggregated across threads via
//!   [`fpr_faults::global_coverage`].
//! * **fail_stop_storm** — the same storm, except worker 0 kills cell 0
//!   mid-flight with [`SmpOs::fail_cell`]: a dying operation injected
//!   at a chosen site, the machine-wide OOM lease deliberately stuck,
//!   then recovery (evacuate every process, drain the frame magazine,
//!   break the lease). Survivors poll [`SmpOs::is_dead`] and redirect;
//!   the machine must quiesce clean at N−1 cells with the dead cell
//!   *empty*.
//!
//! Both arms also gate on the lock-order enforcement added to
//! [`fpr_trace::smp::VLock`]: the documented `mm → pid → buddy → tlb`
//! order must see **zero** violations under storm, injection, and
//! fail-stop alike — the failure paths take locks in the same order the
//! happy paths do.

use crate::os::OsConfig;
use crate::smp::{CellFailure, SmpOs};
use fpr_api::SpawnAttrs;
use fpr_faults::{derive_cell_seed, FaultPlan, FaultSite, SiteCoverage};
use fpr_kernel::MachineConfig;
use fpr_mem::OvercommitPolicy;
use fpr_rng::Rng;
use fpr_trace::{smp as vsmp, FigureData, Series, TableData};
use std::sync::atomic::{AtomicU64, Ordering};

/// Worker threads (and cells) in both arms.
pub const THREADS: usize = 4;

/// Creation ops each worker attempts per arm.
pub const OPS_PER_WORKER: usize = 96;

/// Per-crossing injection probability, in 1024ths, for the sweep arm.
pub const INJECT_PER_1024: u16 = 64;

/// Root seed; every per-op plan derives from it deterministically.
pub const SEED: u64 = 0xE17_0F41_157E;

/// The site armed for the dying operation in the fail-stop arm.
pub const FAIL_SITE: FaultSite = FaultSite::PidAlloc;

/// Ops worker 0 completes before killing cell 0.
const OPS_BEFORE_FAILURE: usize = OPS_PER_WORKER / 2;

fn machine() -> MachineConfig {
    MachineConfig {
        frames: 65_536,
        overcommit: OvercommitPolicy::Always,
        ..MachineConfig::default()
    }
}

/// One storm op against the locked cell: the E16 creation mix, with the
/// creation itself wrapped in `plan`. Returns `true` if the plan
/// injected. Children are destroyed immediately — outside the plan, so
/// cleanup can never be the thing that fails.
fn storm_op(os: &mut crate::os::Os, rng: &mut Rng, plan: FaultPlan) -> bool {
    let init = os.init;
    let kind = rng.gen_index(4);
    let (child, trace) = fpr_faults::with_plan(plan, || match kind {
        0 => os.fork(init),
        1 => os.vfork(init),
        2 => os.spawn(init, "/bin/cat", &[], &SpawnAttrs::default()),
        _ => os.fork_exec(init, "/bin/grep", fpr_mem::ForkMode::Cow),
    });
    let injected = !trace.injected().is_empty();
    match child {
        Ok(c) => {
            os.kernel.exit(c, 0).expect("exit");
            os.kernel.waitpid(init, Some(c)).expect("reap");
        }
        Err(_) => {
            // Containment radius 1: the op failed clean — a transactional
            // creation leaves no half-made child. Radius 2: the injured
            // cell is structurally sound *right now*, not just at quiesce.
            assert!(
                injected,
                "creation failed without an injected fault in an idle-pressure storm"
            );
            os.kernel
                .check_invariants()
                .expect("cell inconsistent immediately after injection");
        }
    }
    injected
}

/// Picks a live cell: the worker's home cell, or (25 % of the time) a
/// random raid target, skipping dead cells.
fn pick_cell(rng: &mut Rng, worker: usize, smp: &SmpOs) -> Option<usize> {
    let want = if rng.gen_bool(0.25) {
        rng.gen_index(smp.ncells())
    } else {
        worker % smp.ncells()
    };
    (0..smp.ncells())
        .map(|off| (want + off) % smp.ncells())
        .find(|&c| !smp.is_dead(c))
}

/// The concurrent-injection arm's results.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Creation ops attempted across all workers.
    pub ops: u64,
    /// Ops that had a fault injected (and were contained).
    pub injected_ops: u64,
    /// Per-site crossings and injections, summed across threads.
    pub coverage: Vec<(FaultSite, SiteCoverage)>,
    /// Slowest worker's virtual elapsed cycles.
    pub wall_cycles: u64,
    /// Lock-order violations recorded during the arm (gate: 0).
    pub order_violations: u64,
}

impl SweepOutcome {
    /// Sites that were both crossed and injected during the storm.
    pub fn sites_injected(&self) -> usize {
        self.coverage.iter().filter(|(_, c)| c.injections > 0).count()
    }

    /// Sites crossed at all (the storm's reachable surface).
    pub fn sites_crossed(&self) -> usize {
        self.coverage.iter().filter(|(_, c)| c.crossings > 0).count()
    }
}

/// Arm 1: every worker storms with per-op random fault plans; the
/// machine must quiesce clean afterwards (the call panics otherwise).
pub fn faultsweep_storm(root_seed: u64) -> SweepOutcome {
    fpr_faults::reset_global_coverage();
    let order_before = vsmp::order_violations();
    let smp = SmpOs::boot(
        OsConfig {
            machine: machine(),
            ..Default::default()
        },
        THREADS,
    );
    let injected_ops = AtomicU64::new(0);
    let elapsed = smp.run(THREADS, |worker, smp| {
        let mut rng = Rng::seed_from_u64(derive_cell_seed(root_seed, worker));
        // Home cell only: with one worker per cell, each cell's op
        // sequence — and therefore each op's crossing sequence and every
        // injection decision — is deterministic regardless of how the
        // host scheduler interleaves threads. Cross-cell concurrency
        // still hammers the shared pid/buddy/tlb subsystems underneath.
        let cell = worker % smp.ncells();
        for op in 0..OPS_PER_WORKER {
            let mut os = smp.cell(cell).lock();
            let plan_seed = derive_cell_seed(root_seed, worker)
                .wrapping_add(op as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            if storm_op(&mut os, &mut rng, FaultPlan::random(plan_seed, INJECT_PER_1024)) {
                injected_ops.fetch_add(1, Ordering::Relaxed);
            }
        }
        fpr_faults::flush_coverage();
    });
    // Containment radius 3: machine-wide — per-cell leak checks against
    // boot baselines plus shared-pool frame conservation.
    smp.check_quiesced();
    SweepOutcome {
        ops: (THREADS * OPS_PER_WORKER) as u64,
        injected_ops: injected_ops.into_inner(),
        coverage: fpr_faults::global_coverage(),
        wall_cycles: elapsed.into_iter().max().unwrap_or(0),
        order_violations: vsmp::order_violations() - order_before,
    }
}

/// The fail-stop arm's results.
#[derive(Debug, Clone)]
pub struct FailStopOutcome {
    /// What the failure did (site, evacuated count, lease state).
    pub failure: CellFailure,
    /// Creation ops survivors completed *after* the cell died.
    pub ops_after_failure: u64,
    /// Cells still alive at quiesce (gate: [`THREADS`] − 1).
    pub live_cells: usize,
    /// Lock-order violations recorded during the arm (gate: 0).
    pub order_violations: u64,
}

/// Arm 2: the same storm, but worker 0 fail-stops cell 0 halfway
/// through; survivors redirect and the machine quiesces clean at N−1.
pub fn fail_stop_storm(root_seed: u64) -> FailStopOutcome {
    let order_before = vsmp::order_violations();
    let smp = SmpOs::boot(
        OsConfig {
            machine: machine(),
            ..Default::default()
        },
        THREADS,
    );
    let failure = std::sync::Mutex::new(None);
    let ops_after_failure = AtomicU64::new(0);
    smp.run(THREADS, |worker, smp| {
        let mut rng = Rng::seed_from_u64(derive_cell_seed(root_seed, worker) ^ 0xFA11);
        for op in 0..OPS_PER_WORKER {
            if worker == 0 && op == OPS_BEFORE_FAILURE {
                // No fault plan is active on this thread (each op wraps
                // only itself), so fail_cell may arm the dying gasp.
                *failure.lock().unwrap() = Some(smp.fail_cell(0, FAIL_SITE));
            }
            let Some(cell) = pick_cell(&mut rng, worker, smp) else {
                break;
            };
            let mut os = smp.cell(cell).lock();
            if smp.is_dead(cell) {
                // Lost the race with fail_cell between the poll and the
                // lock: the cell is an empty husk — route elsewhere.
                continue;
            }
            storm_op(&mut os, &mut rng, FaultPlan::passive());
            if smp.is_dead(0) {
                ops_after_failure.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    smp.check_quiesced();
    assert_eq!(
        smp.shared.oom.lease_holder(),
        None,
        "no OOM lease may survive recovery"
    );
    FailStopOutcome {
        failure: failure.into_inner().unwrap().expect("worker 0 killed cell 0"),
        ops_after_failure: ops_after_failure.into_inner(),
        live_cells: smp.live_cells(),
        order_violations: vsmp::order_violations() - order_before,
    }
}

/// Both arms.
#[derive(Debug, Clone)]
pub struct CellFailureOutcome {
    /// Arm 1: concurrent injection storm.
    pub sweep: SweepOutcome,
    /// Arm 2: fail-stop and recovery mid-storm.
    pub failstop: FailStopOutcome,
}

impl CellFailureOutcome {
    /// Per-site crossings and injections during the concurrent sweep:
    /// x is the site index in [`FaultSite::ALL`] order.
    pub fn figure(&self) -> FigureData {
        let mut fig = FigureData::new(
            "fig_cell_failure",
            "concurrent fault injection: per-site crossings and contained injections",
            "fault site index",
            "events",
        );
        let mut crossings = Series::new("crossings");
        let mut injections = Series::new("contained_injections");
        for (site, cov) in &self.sweep.coverage {
            crossings.push(site.index() as f64, cov.crossings as f64);
            injections.push(site.index() as f64, cov.injections as f64);
        }
        fig.series.push(crossings);
        fig.series.push(injections);
        fig
    }

    /// One row per fault site plus summary rows for both arms.
    pub fn table(&self) -> TableData {
        let mut t = TableData::new(
            "tab_cell_failure",
            "E17: concurrent faultsweep coverage and fail-stop recovery",
            &["row", "crossings", "injections", "note"],
        );
        for (site, cov) in &self.sweep.coverage {
            if cov.crossings == 0 {
                continue;
            }
            t.push_row(vec![
                format!("site:{}", site.name()),
                cov.crossings.to_string(),
                cov.injections.to_string(),
                String::new(),
            ]);
        }
        t.push_row(vec![
            "sweep".into(),
            self.sweep.ops.to_string(),
            self.sweep.injected_ops.to_string(),
            format!("order_violations={}", self.sweep.order_violations),
        ]);
        t.push_row(vec![
            "fail_stop".into(),
            self.failstop.ops_after_failure.to_string(),
            self.failstop.failure.evacuated.to_string(),
            format!(
                "live_cells={} site={} lease_stuck={} order_violations={}",
                self.failstop.live_cells,
                self.failstop.failure.site.name(),
                self.failstop.failure.lease_was_stuck,
                self.failstop.order_violations,
            ),
        ]);
        t
    }
}

/// Runs both arms at the default seed.
pub fn run() -> CellFailureOutcome {
    run_with(SEED)
}

/// Runs both arms at a chosen root seed.
pub fn run_with(root_seed: u64) -> CellFailureOutcome {
    CellFailureOutcome {
        sweep: faultsweep_storm(root_seed),
        failstop: fail_stop_storm(root_seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Global coverage and the order-violation counter are process-wide;
    // these tests must not overlap in one test binary.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn concurrent_sweep_injects_widely_and_quiesces_clean() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = faultsweep_storm(SEED);
        assert_eq!(out.ops, (THREADS * OPS_PER_WORKER) as u64);
        assert!(
            out.injected_ops > out.ops / 10,
            "the sweep must actually inject: {} of {}",
            out.injected_ops,
            out.ops
        );
        assert!(
            out.sites_injected() >= 5,
            "injections must spread across the creation surface: {} sites",
            out.sites_injected()
        );
        assert!(out.sites_crossed() >= out.sites_injected());
        assert_eq!(out.order_violations, 0, "lock order held under injection");
        assert!(out.wall_cycles > 0);
    }

    #[test]
    fn sweep_replays_deterministic_injection_counts() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        // Thread interleaving varies; the per-(worker, op) plans do not.
        // Injection decisions depend only on the plan and each op's own
        // crossing sequence, so totals replay exactly.
        let a = faultsweep_storm(0x000D_5EED);
        let b = faultsweep_storm(0x000D_5EED);
        assert_eq!(a.injected_ops, b.injected_ops);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn fail_stop_recovers_to_n_minus_one_mid_storm() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = fail_stop_storm(SEED);
        assert_eq!(out.live_cells, THREADS - 1);
        assert!(out.failure.died_at_site, "fork always crosses pid_alloc");
        assert!(out.failure.evacuated >= 1, "at least init was reaped");
        assert!(out.failure.lease_was_stuck, "the worst case was exercised");
        assert!(
            out.ops_after_failure > 0,
            "survivors kept creating processes after the failure"
        );
        assert_eq!(out.order_violations, 0, "lock order held through fail-stop");
    }

    #[test]
    fn figure_and_table_have_the_shape() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = run();
        let fig = out.figure();
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].points.len(), FaultSite::ALL.len());
        let t = out.table();
        assert!(t.rows.len() >= 2, "site rows plus two summary rows");
        assert!(t.rows.iter().any(|r| r[0] == "sweep"));
        assert!(t.rows.iter().any(|r| r[0] == "fail_stop"));
    }
}
