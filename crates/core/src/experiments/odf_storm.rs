//! E10: the on-demand fork fault storm.
//!
//! On-demand page-table copying makes fork itself O(VMAs + subtrees),
//! but the PTE-copy work does not vanish — it moves into the child's
//! fault storm. The first write into each shared 512-entry subtree pays
//! an extra structure fault: privatise the node (512 PTE copies), bump
//! the frame refcounts, shoot down the TLB, and *then* take the ordinary
//! COW break. This experiment sweeps the fraction of pages the child
//! writes after fork and compares COW fork against on-demand fork on
//! three axes: fork-time cost, worst-case first-touch latency, and total
//! (fork + storm) cost — which must be conserved, not reduced.

use crate::os::{Os, OsConfig};
use fpr_mem::{ForkMode, CYCLES_PER_US};
use fpr_trace::{FigureData, ProcessShape, Series, TouchPattern};

/// Result of one storm cell for a single fork mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdfCell {
    /// Fraction of parent pages the child wrote after fork.
    pub touch_fraction: f64,
    /// Cycles the fork itself charged.
    pub fork_cycles: u64,
    /// Cycles the post-fork writes charged.
    pub storm_cycles: u64,
    /// Cycles of the single most expensive post-fork write (the
    /// first-touch latency the paper's tail-latency complaint is about).
    pub worst_touch_cycles: u64,
    /// Subtrees the storm privatised (0 under COW).
    pub unshares: u64,
}

/// Measures one cell: fork `footprint` pages under `mode`, then write
/// `fraction` of them in the child.
pub fn measure(footprint: u64, fraction: f64, mode: ForkMode, seed: u64) -> OdfCell {
    let mut os = Os::boot(OsConfig {
        machine: super::fig1::machine_for(footprint),
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape::with_heap(footprint))
        .expect("fits");
    let heap = os.first_mmap_base(parent).expect("heap mapped");
    let pages = TouchPattern::Random { fraction, seed }.expand(footprint);
    let (child, fork_cycles) = os.measure(|os| {
        let (child, _) = os.fork_stats(parent, mode).expect("fork fits");
        child
    });
    let mut worst = 0u64;
    let (_, storm_cycles) = os.measure(|os| {
        for p in &pages {
            let before = os.kernel.cycles.total();
            os.kernel
                .write_mem(child, heap.add(*p), 0xbeef)
                .expect("write");
            worst = worst.max(os.kernel.cycles.total() - before);
        }
    });
    let unshares = os.kernel.process(child).unwrap().aspace.stats.pt_unshares;
    OdfCell {
        touch_fraction: fraction,
        fork_cycles,
        storm_cycles,
        worst_touch_cycles: worst,
        unshares,
    }
}

/// Runs the sweep and returns the figure: fork-time and total cost per
/// mode as the child touches more of the inherited heap.
pub fn run(footprint: u64, fractions: &[f64]) -> FigureData {
    let mut fig = FigureData::new(
        "fig_odf_storm",
        "fork + child-write cost, COW vs on-demand page tables",
        "touch fraction",
        "us",
    );
    let mut cow_fork = Series::new("cow_fork");
    let mut odf_fork = Series::new("ondemand_fork");
    let mut cow_total = Series::new("cow_total");
    let mut odf_total = Series::new("ondemand_total");
    for (i, &f) in fractions.iter().enumerate() {
        let seed = 7000 + i as u64;
        let cow = measure(footprint, f, ForkMode::Cow, seed);
        let odf = measure(footprint, f, ForkMode::OnDemand, seed);
        let us = |c: u64| c as f64 / CYCLES_PER_US as f64;
        cow_fork.push(f, us(cow.fork_cycles));
        odf_fork.push(f, us(odf.fork_cycles));
        cow_total.push(f, us(cow.fork_cycles + cow.storm_cycles));
        odf_total.push(f, us(odf.fork_cycles + odf.storm_cycles));
    }
    fig.series = vec![cow_fork, odf_fork, cow_total, odf_total];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP: u64 = 16_384;

    #[test]
    fn fork_time_cost_moves_into_the_storm() {
        let cow = measure(FP, 1.0, ForkMode::Cow, 1);
        let odf = measure(FP, 1.0, ForkMode::OnDemand, 1);
        // Fork itself: on-demand is dramatically cheaper.
        assert!(
            odf.fork_cycles * 20 < cow.fork_cycles,
            "on-demand fork {} must be >20x cheaper than COW fork {}",
            odf.fork_cycles,
            cow.fork_cycles
        );
        // The storm privatised every heap subtree (the ASLR'd heap base
        // is rarely node-aligned, so the span may straddle one extra).
        assert!(
            odf.unshares == FP / 512 || odf.unshares == FP / 512 + 1,
            "expected ~{} unshares, got {}",
            FP / 512,
            odf.unshares
        );
        assert_eq!(cow.unshares, 0);
        // Total work is conserved: deferring the PTE copies does not
        // change what a fully-written child ends up paying (within 5%).
        let cow_total = cow.fork_cycles + cow.storm_cycles;
        let odf_total = odf.fork_cycles + odf.storm_cycles;
        let ratio = odf_total as f64 / cow_total as f64;
        assert!(
            (0.95..1.05).contains(&ratio),
            "total work must be conserved: {odf_total} vs {cow_total} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn first_touch_latency_is_higher_on_demand() {
        let cow = measure(FP, 0.25, ForkMode::Cow, 2);
        let odf = measure(FP, 0.25, ForkMode::OnDemand, 2);
        // The worst single write under on-demand pays the deferred node
        // copy (512 PTEs + node alloc + extra fault + shootdown) on top
        // of the ordinary COW break.
        assert!(
            odf.worst_touch_cycles as f64 > cow.worst_touch_cycles as f64 * 3.0,
            "on-demand first touch {} must dwarf the COW break {}",
            odf.worst_touch_cycles,
            cow.worst_touch_cycles
        );
    }

    #[test]
    fn untouched_child_never_pays_the_deferred_copy() {
        let odf = measure(FP, 0.0, ForkMode::OnDemand, 3);
        assert_eq!(odf.storm_cycles, 0);
        assert_eq!(odf.unshares, 0);
    }

    #[test]
    fn totals_converge_as_touch_fraction_grows() {
        let fig = run(FP, &[0.0, 0.5, 1.0]);
        let cow = fig.series("cow_total").unwrap();
        let odf = fig.series("ondemand_total").unwrap();
        // At zero touches on-demand wins outright; fully touched the two
        // totals meet.
        assert!(odf.first_y().unwrap() < cow.first_y().unwrap() / 10.0);
        let gap = (odf.last_y().unwrap() - cow.last_y().unwrap()).abs() / cow.last_y().unwrap();
        assert!(gap < 0.05, "fully-touched totals must meet: gap {gap:.3}");
    }
}
