//! E1 / Figure 1: child-creation latency vs parent memory size.
//!
//! The paper's single measured figure: `fork`+`exec` latency grows with
//! the parent's footprint while `posix_spawn` stays flat. This driver
//! reproduces it on the simulator for four APIs; the `fpr-native` crate
//! mirrors it on the host kernel.

use crate::os::{Os, OsConfig};
use fpr_api::{ProcessBuilder, SpawnAttrs};
use fpr_kernel::MachineConfig;
use fpr_mem::{ForkMode, OvercommitPolicy, CYCLES_PER_US};
use fpr_trace::{FigureData, ProcessShape, Series};

/// Builds a machine big enough for a `footprint`-page parent plus slack.
pub fn machine_for(footprint: u64) -> MachineConfig {
    MachineConfig {
        frames: footprint * 2 + 16_384,
        overcommit: OvercommitPolicy::Always,
        ..MachineConfig::default()
    }
}

/// Runs the Figure 1 sweep over `footprints` (pages of populated parent
/// heap). Returns latency in simulated microseconds per API.
pub fn run(footprints: &[u64]) -> FigureData {
    let mut fig = FigureData::new(
        "fig1",
        "process creation latency vs parent footprint",
        "parent MiB",
        "latency us",
    );
    let mut fork_s = Series::new("fork+exec");
    let mut odf_s = Series::new("fork(OnDemand)+exec");
    let mut thp_s = Series::new("fork(OnDemand+THP)+exec");
    let mut vfork_s = Series::new("vfork+exec");
    let mut spawn_s = Series::new("posix_spawn");
    let mut xproc_s = Series::new("xproc");

    for &fp in footprints {
        let mib = fp as f64 * 4096.0 / (1024.0 * 1024.0);
        let mk = || {
            let mut os = Os::boot(OsConfig {
                machine: machine_for(fp),
                ..Default::default()
            });
            let parent = os
                .make_parent(ProcessShape::with_heap(fp))
                .expect("parent fits");
            (os, parent)
        };

        // fork + exec
        {
            let (mut os, parent) = mk();
            let (_, cycles) = os.measure(|os| {
                let child = os.fork(parent).expect("fork fits");
                os.exec(child, "/bin/tool").expect("exec");
                child
            });
            fork_s.push(mib, cycles as f64 / CYCLES_PER_US as f64);
        }
        // fork with on-demand page-table copying + exec
        {
            let (mut os, parent) = mk();
            let (_, cycles) = os.measure(|os| {
                let (child, _) = os.fork_stats(parent, ForkMode::OnDemand).expect("fork fits");
                os.exec(child, "/bin/tool").expect("exec");
                child
            });
            odf_s.push(mib, cycles as f64 / CYCLES_PER_US as f64);
        }
        // fork on a THP machine: the populated heap sits in 2 MiB huge
        // leaves, so the on-demand walk shares whole huge directories and
        // the write-protect pass touches block entries, not pages.
        {
            let mut os = Os::boot(OsConfig {
                machine: MachineConfig {
                    thp: true,
                    ..machine_for(fp)
                },
                ..Default::default()
            });
            let parent = os
                .make_parent(ProcessShape::with_heap(fp))
                .expect("parent fits");
            let (_, cycles) = os.measure(|os| {
                let (child, _) = os.fork_stats(parent, ForkMode::OnDemand).expect("fork fits");
                os.exec(child, "/bin/tool").expect("exec");
                child
            });
            thp_s.push(mib, cycles as f64 / CYCLES_PER_US as f64);
        }
        // vfork + exec
        {
            let (mut os, parent) = mk();
            let (_, cycles) = os.measure(|os| {
                let child = os.vfork(parent).expect("vfork");
                os.exec(child, "/bin/tool").expect("exec");
                child
            });
            vfork_s.push(mib, cycles as f64 / CYCLES_PER_US as f64);
        }
        // posix_spawn
        {
            let (mut os, parent) = mk();
            let (_, cycles) = os.measure(|os| {
                os.spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
                    .expect("spawn")
            });
            spawn_s.push(mib, cycles as f64 / CYCLES_PER_US as f64);
        }
        // cross-process builder
        {
            let (mut os, parent) = mk();
            let (_, cycles) = os.measure(|os| {
                os.spawn_builder(parent, ProcessBuilder::new("/bin/tool"))
                    .expect("xproc")
            });
            xproc_s.push(mib, cycles as f64 / CYCLES_PER_US as f64);
        }
    }
    fig.series = vec![fork_s, odf_s, thp_s, vfork_s, spawn_s, xproc_s];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_grows_spawn_flat() {
        // Small sweep keeps the test fast; the shape must already show.
        let fig = run(&[256, 1024, 4096, 16_384]);
        let fork = fig.series("fork+exec").unwrap();
        let odf = fig.series("fork(OnDemand)+exec").unwrap();
        let thp = fig.series("fork(OnDemand+THP)+exec").unwrap();
        let spawn = fig.series("posix_spawn").unwrap();
        let vfork = fig.series("vfork+exec").unwrap();
        let xproc = fig.series("xproc").unwrap();

        // fork grows super-linearly across a 64x footprint sweep.
        assert!(
            fork.growth_factor().unwrap() > 10.0,
            "fork should grow ~linearly: {:?}",
            fork.points
        );
        // spawn, vfork, xproc are flat (within 5%).
        for s in [spawn, vfork, xproc] {
            let g = s.growth_factor().unwrap();
            assert!((0.95..1.05).contains(&g), "{} not flat: {g}", s.label);
        }
        // On-demand fork grows only with *subtrees* (pages/512), so across
        // a 64x page sweep it stays near-flat — nothing like fork's slope.
        let g = odf.growth_factor().unwrap();
        assert!(g < 1.5, "fork(OnDemand) should be near-flat: {g}");
        assert!(
            fork.last_y().unwrap() > odf.last_y().unwrap() * 10.0,
            "on-demand fork must beat page-copying fork by an order of \
             magnitude at the large end"
        );
        // THP never makes the on-demand fork worse, and at the large end
        // (per-VMA heap ≥ one 2 MiB block, so promotion really fired) it
        // is at least as cheap: whole huge blocks share as single units.
        assert!(
            thp.last_y().unwrap() <= odf.last_y().unwrap() * 1.01,
            "fork(OnDemand+THP) {:?} must not exceed fork(OnDemand) {:?}",
            thp.points,
            odf.points
        );
        // At the largest size fork is much slower than spawn.
        assert!(fork.last_y().unwrap() > spawn.last_y().unwrap() * 20.0);
        // At the smallest size they are within an order of magnitude.
        assert!(fork.first_y().unwrap() < spawn.first_y().unwrap() * 10.0);
    }

    #[test]
    fn on_demand_fork_within_2x_of_spawn_at_4gib() {
        // The acceptance bound: at a 4 GiB simulated footprint
        // (1 Mi pages, ~2048 leaf subtrees) the fork-time latency of an
        // on-demand fork stays within 2x of a full posix_spawn. Only the
        // two flat APIs run — a COW fork at this size would copy a
        // million PTEs.
        let fp: u64 = 1_048_576;
        let spawn_us = {
            let mut os = Os::boot(OsConfig {
                machine: machine_for(fp),
                ..Default::default()
            });
            let parent = os.make_parent(ProcessShape::with_heap(fp)).unwrap();
            let (_, cycles) = os.measure(|os| {
                os.spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
                    .expect("spawn")
            });
            cycles as f64 / CYCLES_PER_US as f64
        };
        let odf_us = {
            let mut os = Os::boot(OsConfig {
                machine: machine_for(fp),
                ..Default::default()
            });
            let parent = os.make_parent(ProcessShape::with_heap(fp)).unwrap();
            let (_, cycles) =
                os.measure(|os| os.fork_stats(parent, ForkMode::OnDemand).expect("fork"));
            cycles as f64 / CYCLES_PER_US as f64
        };
        assert!(
            odf_us <= spawn_us * 2.0,
            "fork(OnDemand) {odf_us:.2}us must stay within 2x of \
             posix_spawn {spawn_us:.2}us at 4 GiB"
        );
        // With THP the same heap sits in huge directories, so the fork
        // walk shares a handful of directories instead of ~2048 leaf
        // subtrees — it must undercut the small-page on-demand fork.
        let thp_us = {
            let mut os = Os::boot(OsConfig {
                machine: MachineConfig {
                    thp: true,
                    ..machine_for(fp)
                },
                ..Default::default()
            });
            let parent = os.make_parent(ProcessShape::with_heap(fp)).unwrap();
            let (_, cycles) =
                os.measure(|os| os.fork_stats(parent, ForkMode::OnDemand).expect("fork"));
            cycles as f64 / CYCLES_PER_US as f64
        };
        assert!(
            thp_us <= odf_us,
            "fork(OnDemand+THP) {thp_us:.2}us must not exceed \
             fork(OnDemand) {odf_us:.2}us at a fully promotable 4 GiB"
        );
    }
}
