//! E2: where fork's time goes.
//!
//! Decomposes the measured fork cost into page-table-entry copies,
//! page-table node allocations, VMA clones, descriptor duplications, and
//! the TLB shootdown, and checks the components reconcile with the
//! measured total. The paper's prose claim: beyond modest sizes, the
//! page-table copy dominates even though no data is copied.
//!
//! Component counts come from the [`fpr_trace::metrics`] registry — a
//! snapshot is taken before and after the fork and the decomposition is
//! priced from the counter deltas, exactly the attribution the runtime
//! tracing subsystem records.

use crate::os::{Os, OsConfig};
use fpr_mem::ForkMode;
use fpr_trace::{metrics, ProcessShape, TableData};

/// One decomposed fork measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Parent footprint in pages.
    pub pages: u64,
    /// Cycles spent copying leaf PTEs.
    pub pte_cycles: u64,
    /// Cycles spent allocating the child's page-table nodes.
    pub node_cycles: u64,
    /// Cycles spent cloning VMA records.
    pub vma_cycles: u64,
    /// Cycles spent duplicating open descriptors (scales with *open*
    /// descriptors, not table capacity — the table is sparse).
    pub fd_cycles: u64,
    /// Cycles in the TLB shootdown.
    pub shootdown_cycles: u64,
    /// Everything else (syscall entry, FD table, bookkeeping).
    pub other_cycles: u64,
    /// Measured total.
    pub total_cycles: u64,
}

/// Measures and decomposes one fork of a parent with `pages` populated.
pub fn measure(pages: u64) -> Breakdown {
    measure_with_fds(pages, 0, false)
}

/// Like [`measure`], with `extra_fds` files opened first. When `sparse`,
/// the last one is also dup2'd to descriptor 1000, stretching the
/// nominal table capacity without adding open descriptors.
pub fn measure_with_fds(pages: u64, extra_fds: u32, sparse: bool) -> Breakdown {
    let mut os = Os::boot(OsConfig {
        machine: super::fig1::machine_for(pages),
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape::with_heap(pages))
        .expect("parent fits");
    for i in 0..extra_fds {
        let fd = os
            .kernel
            .open(parent, &format!("/tmp{i}"), fpr_kernel::OpenFlags::RDWR, true)
            .expect("open");
        if sparse && i == extra_fds - 1 {
            os.kernel
                .dup2(parent, fd, fpr_kernel::Fd(1000))
                .expect("dup2");
            os.kernel.close(parent, fd).expect("close");
        }
    }
    let cost = os.kernel.phys.cost().clone();
    let cpus = os.kernel.cpus_running(parent);
    let before = metrics::snapshot();
    let ((_, _stats), total) =
        os.measure(|os| os.fork_stats(parent, ForkMode::Cow).expect("fork fits"));
    let delta = metrics::snapshot().delta(&before);

    // Price each component from the metric deltas the fork recorded.
    let pte_cycles = delta.counter("mem.fork.pte_copy") * cost.pte_copy;
    let node_cycles = delta.counter("mem.fork.pt_node") * cost.pt_node_alloc;
    let vma_cycles = delta.counter("mem.fork.vma_clone") * cost.vma_clone;
    let fd_cycles = delta.counter("kernel.fd_clone") * cost.fd_clone;
    let shootdown_cycles = delta.counter("mem.tlb.shootdown")
        * (cost.tlb_shootdown_base + cost.tlb_shootdown_per_cpu * (cpus.max(1) as u64 - 1));
    let accounted = pte_cycles + node_cycles + vma_cycles + fd_cycles + shootdown_cycles;
    Breakdown {
        pages,
        pte_cycles,
        node_cycles,
        vma_cycles,
        fd_cycles,
        shootdown_cycles,
        other_cycles: total.saturating_sub(accounted),
        total_cycles: total,
    }
}

/// Runs the sweep and formats the table.
pub fn run(footprints: &[u64]) -> TableData {
    let mut t = TableData::new(
        "tab_fork_breakdown",
        "fork cost decomposition (cycles)",
        &[
            "pages",
            "pte_copy",
            "pt_nodes",
            "vma_clone",
            "fd_clone",
            "shootdown",
            "other",
            "total",
            "pte_%",
        ],
    );
    for &fp in footprints {
        let b = measure(fp);
        t.push_row(vec![
            b.pages.to_string(),
            b.pte_cycles.to_string(),
            b.node_cycles.to_string(),
            b.vma_cycles.to_string(),
            b.fd_cycles.to_string(),
            b.shootdown_cycles.to_string(),
            b.other_cycles.to_string(),
            b.total_cycles.to_string(),
            format!("{:.1}", 100.0 * b.pte_cycles as f64 / b.total_cycles as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_reconcile_with_total() {
        let b = measure(4096);
        let accounted = b.pte_cycles
            + b.node_cycles
            + b.vma_cycles
            + b.fd_cycles
            + b.shootdown_cycles
            + b.other_cycles;
        assert_eq!(accounted, b.total_cycles);
        // "other" must be small: the decomposition explains the cost.
        assert!(
            (b.other_cycles as f64) < 0.1 * b.total_cycles as f64,
            "unexplained cycles: {} of {}",
            b.other_cycles,
            b.total_cycles
        );
    }

    #[test]
    fn pte_copy_dominates_at_scale() {
        let small = measure(256);
        let big = measure(16_384);
        let share = |b: &Breakdown| b.pte_cycles as f64 / b.total_cycles as f64;
        assert!(
            share(&big) > share(&small),
            "PTE share must grow with footprint"
        );
        assert!(
            share(&big) > 0.4,
            "PTE copy should dominate at 64 MiB: {}",
            share(&big)
        );
    }

    #[test]
    fn fd_cost_scales_with_open_fds_not_capacity() {
        let none = measure_with_fds(256, 0, false);
        assert_eq!(none.fd_cycles, 0);
        let few = measure_with_fds(256, 4, false);
        assert!(few.fd_cycles > 0);
        // dup2 the last descriptor to 1000: nominal capacity stretches
        // ~250x, open count stays at 4 — fork must not notice.
        let sparse = measure_with_fds(256, 4, true);
        assert_eq!(
            sparse.fd_cycles, few.fd_cycles,
            "FD clone cost must track open descriptors, not the highest fd"
        );
        assert_eq!(
            sparse.total_cycles, few.total_cycles,
            "a sparse table must not make fork more expensive"
        );
    }

    #[test]
    fn table_renders_rows() {
        let t = run(&[256, 1024]);
        assert_eq!(t.rows.len(), 2);
        assert!(t.render().contains("pte_copy"));
    }
}
