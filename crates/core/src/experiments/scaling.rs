//! E3b: fork doesn't scale — TLB shootdowns grow with running threads.
//!
//! Fork must write-protect the parent's mappings, which invalidates
//! cached translations on every CPU running the parent; each COW break
//! afterwards shoots down again. The more CPUs the parent occupies, the
//! more every fork and every fault costs — interrupt traffic that
//! serialises concurrent forks. The ablation series disables remote
//! shootdown accounting to isolate the effect.

use crate::os::{Os, OsConfig};
use fpr_kernel::MachineConfig;
use fpr_mem::{ForkMode, OvercommitPolicy, Prot, Share, CYCLES_PER_US};
use fpr_trace::{FigureData, ProcessShape, Series};

/// One measurement at a given CPU occupancy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// CPUs running the parent's threads during the fork.
    pub cpus_running: u32,
    /// Fork cycles with shootdowns charged.
    pub fork_cycles: u64,
    /// One post-fork COW break with shootdowns charged.
    pub cow_break_cycles: u64,
    /// Fork cycles with remote shootdowns ablated.
    pub fork_cycles_no_shootdown: u64,
}

fn setup(threads: u32, footprint: u64, shootdowns: bool) -> (Os, fpr_kernel::Pid) {
    let mut os = Os::boot(OsConfig {
        machine: MachineConfig {
            // Enough CPUs that init plus every parent thread gets a slot,
            // so `threads` alone sets the shootdown fan-out.
            cpus: 128,
            frames: footprint * 2 + 16_384,
            overcommit: OvercommitPolicy::Always,
            ..MachineConfig::default()
        },
        ..Default::default()
    });
    os.kernel.tlb.shootdowns_enabled = shootdowns;
    let parent = os
        .make_parent(ProcessShape {
            heap_pages: footprint,
            vma_count: 8,
            extra_fds: 0,
            extra_threads: threads - 1,
        })
        .expect("parent fits");
    // Schedule: place the parent's threads on CPUs.
    os.kernel.sched.tick();
    assert_eq!(os.kernel.cpus_running(parent), threads);
    (os, parent)
}

/// Measures fork and COW-break cost with `threads` of the parent on CPU.
pub fn measure(threads: u32, footprint: u64) -> ScalePoint {
    let (mut os, parent) = setup(threads, footprint, true);
    let heap = os.first_mmap_base(parent).expect("heap");
    let ((child, _), fork_cycles) =
        os.measure(|os| os.fork_stats(parent, ForkMode::Cow).expect("fork"));
    // Parent touches one page: a COW break with full shootdown fan-out.
    let (_, cow_break_cycles) =
        os.measure(|os| os.kernel.write_mem(parent, heap, 1).expect("write"));
    let _ = child;

    let (mut os2, parent2) = setup(threads, footprint, false);
    let (_, fork_no) = os2.measure(|os| os.fork_stats(parent2, ForkMode::Cow).expect("fork"));
    ScalePoint {
        cpus_running: threads,
        fork_cycles,
        cow_break_cycles,
        fork_cycles_no_shootdown: fork_no,
    }
}

/// Fork cost with transparent huge pages and `threads` of the parent on
/// CPU. The parent's heap is a single promotable VMA, so the COW fork
/// write-protects and shares whole 2 MiB blocks: the shootdown becomes a
/// short ranged flush of huge entries instead of a page-count-sized one,
/// and the page-table pass touches block entries, not PTEs.
pub fn measure_thp(threads: u32, footprint: u64) -> u64 {
    let mut os = Os::boot(OsConfig {
        machine: MachineConfig {
            cpus: 128,
            thp: true,
            frames: footprint * 2 + 16_384,
            overcommit: OvercommitPolicy::Always,
            ..MachineConfig::default()
        },
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape {
            heap_pages: footprint,
            vma_count: 1,
            extra_fds: 0,
            extra_threads: threads - 1,
        })
        .expect("parent fits");
    os.kernel.sched.tick();
    assert_eq!(os.kernel.cpus_running(parent), threads);
    let (_, cycles) = os.measure(|os| os.fork_stats(parent, ForkMode::Cow).expect("fork"));
    cycles
}

/// Frame-allocation storm: the cycles `pages` demand-zero faults cost
/// while `threads` CPUs contend for the allocator. With
/// `per_cpu_cache`, each CPU fills a private magazine from one batched
/// buddy acquisition, so the global serialization (and its per-contender
/// penalty) is paid once per batch instead of once per frame — the
/// second half of the fork-doesn't-scale story (allocator contention on
/// the COW-break flood) and its ablation.
pub fn alloc_storm(threads: u32, pages: u64, per_cpu_cache: bool) -> u64 {
    let mut os = Os::boot(OsConfig {
        machine: MachineConfig {
            cpus: 128,
            frames: pages * 2 + 16_384,
            overcommit: OvercommitPolicy::Always,
            ..MachineConfig::default()
        },
        ..Default::default()
    });
    os.kernel.phys.set_contenders(threads.saturating_sub(1));
    if per_cpu_cache {
        os.kernel.phys.enable_frame_cache(threads as usize, 16);
    }
    let parent = os
        .make_parent(ProcessShape::with_heap(16))
        .expect("parent fits");
    let base = os
        .kernel
        .mmap_anon(parent, pages, Prot::RW, Share::Private)
        .expect("map");
    let (_, cycles) = os.measure(|os| os.kernel.populate(parent, base, pages).expect("populate"));
    cycles
}

/// Runs the sweep.
pub fn run(thread_counts: &[u32], footprint: u64) -> FigureData {
    let mut fig = FigureData::new(
        "fig_fork_scaling",
        "fork and COW-break cost vs CPUs running the parent",
        "cpus running",
        "us",
    );
    let mut fork_s = Series::new("fork");
    let mut thp_s = Series::new("fork_thp");
    let mut cow_s = Series::new("cow_break");
    let mut ablate_s = Series::new("fork_no_shootdown");
    let mut storm_global_s = Series::new("alloc_storm_global");
    let mut storm_cached_s = Series::new("alloc_storm_percpu");
    for &t in thread_counts {
        let p = measure(t, footprint);
        fork_s.push(t as f64, p.fork_cycles as f64 / CYCLES_PER_US as f64);
        thp_s.push(
            t as f64,
            measure_thp(t, footprint) as f64 / CYCLES_PER_US as f64,
        );
        cow_s.push(t as f64, p.cow_break_cycles as f64 / CYCLES_PER_US as f64);
        ablate_s.push(
            t as f64,
            p.fork_cycles_no_shootdown as f64 / CYCLES_PER_US as f64,
        );
        storm_global_s.push(
            t as f64,
            alloc_storm(t, footprint, false) as f64 / CYCLES_PER_US as f64,
        );
        storm_cached_s.push(
            t as f64,
            alloc_storm(t, footprint, true) as f64 / CYCLES_PER_US as f64,
        );
    }
    fig.series = vec![
        fork_s,
        thp_s,
        cow_s,
        ablate_s,
        storm_global_s,
        storm_cached_s,
    ];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_rises_with_cpu_occupancy() {
        let one = measure(1, 1024);
        let many = measure(16, 1024);
        assert!(many.fork_cycles > one.fork_cycles);
        assert!(many.cow_break_cycles > one.cow_break_cycles);
        // The delta is exactly the remote-ack cost (15 extra CPUs).
        let cost = fpr_mem::CostModel::default();
        assert_eq!(
            many.cow_break_cycles - one.cow_break_cycles,
            15 * cost.tlb_shootdown_per_cpu
        );
    }

    #[test]
    fn ablation_removes_the_growth() {
        let one = measure(1, 1024);
        let many = measure(16, 1024);
        assert_eq!(
            one.fork_cycles_no_shootdown, many.fork_cycles_no_shootdown,
            "without shootdowns fork cost is occupancy-independent"
        );
        assert!(many.fork_cycles > many.fork_cycles_no_shootdown);
    }

    #[test]
    fn per_cpu_cache_ablates_allocator_contention() {
        // Uncontended (1 CPU), the cache still wins slightly through
        // batching; under contention the gap must widen dramatically —
        // the global path pays the serialization per frame, the cached
        // path per batch.
        let global_1 = alloc_storm(1, 512, false);
        let cached_1 = alloc_storm(1, 512, true);
        assert!(cached_1 < global_1);
        let global_16 = alloc_storm(16, 512, false);
        let cached_16 = alloc_storm(16, 512, true);
        assert!(
            global_16 - cached_16 > (global_1 - cached_1) * 8,
            "contention gap must dwarf the uncontended one: \
             {global_16}-{cached_16} vs {global_1}-{cached_1}"
        );
        // Contention does not grow the cached path's cost per frame much:
        // refills amortise the per-contender penalty over the batch.
        assert!((cached_16 as f64) < cached_1 as f64 * 2.0);
    }

    #[test]
    fn figure_has_six_series() {
        let fig = run(&[1, 4], 512);
        assert_eq!(fig.series.len(), 6);
        assert!(fig.series("fork").is_some());
        assert!(fig.series("fork_thp").is_some());
        assert!(fig.series("fork_no_shootdown").is_some());
        assert!(fig.series("alloc_storm_global").is_some());
        assert!(fig.series("alloc_storm_percpu").is_some());
    }

    #[test]
    fn thp_fork_undercuts_small_page_fork() {
        // One promotable 2 MiB-per-block heap: the COW fork shares and
        // write-protects whole blocks, so its cost sits well under the
        // per-PTE small-page fork at the same footprint and occupancy.
        let small = measure(16, 4_096).fork_cycles;
        let huge = measure_thp(16, 4_096);
        assert!(
            huge * 2 < small,
            "THP fork {huge} should undercut small-page fork {small}"
        );
    }
}
