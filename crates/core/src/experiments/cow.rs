//! E3a: the COW fault storm.
//!
//! COW makes fork itself cheaper, but every page the child (or parent)
//! subsequently writes costs a fault, a page copy and a TLB shootdown.
//! This experiment sweeps the fraction of pages the child touches after
//! fork and compares the *total* cost (fork + post-fork writes) of COW
//! fork against an eager-copying fork: past a crossover fraction, the
//! deferred machinery is the more expensive way to copy.

use crate::os::{Os, OsConfig};
use fpr_mem::{ForkMode, CYCLES_PER_US};
use fpr_trace::{FigureData, ProcessShape, Series, TouchPattern};

/// Result of one COW-storm cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormCell {
    /// Fraction of parent pages the child wrote after fork.
    pub touch_fraction: f64,
    /// Fork cycles + post-fork write cycles under COW.
    pub cow_total: u64,
    /// Fork cycles + post-fork write cycles under eager copying.
    pub eager_total: u64,
    /// COW faults actually taken.
    pub cow_faults: u64,
}

/// Measures one cell at `footprint` pages and `fraction` touched.
pub fn measure(footprint: u64, fraction: f64, seed: u64) -> StormCell {
    let mut totals = [0u64; 2];
    let mut cow_faults = 0;
    for (i, mode) in [ForkMode::Cow, ForkMode::Eager].into_iter().enumerate() {
        let mut os = Os::boot(OsConfig {
            machine: super::fig1::machine_for(footprint),
            ..Default::default()
        });
        let parent = os
            .make_parent(ProcessShape::with_heap(footprint))
            .expect("fits");
        let heap = os.first_mmap_base(parent).expect("heap mapped");
        let pattern = TouchPattern::Random { fraction, seed };
        let pages = pattern.expand(footprint);
        let (child, cycles) = os.measure(|os| {
            let (child, _) = os.fork_stats(parent, mode).expect("fork fits");
            for p in &pages {
                os.kernel
                    .write_mem(child, heap.add(*p), 0xbeef)
                    .expect("write");
            }
            child
        });
        totals[i] = cycles;
        if mode == ForkMode::Cow {
            cow_faults = os.kernel.process(child).unwrap().aspace.stats.cow_copies
                + os.kernel.process(child).unwrap().aspace.stats.cow_reuses;
        }
    }
    StormCell {
        touch_fraction: fraction,
        cow_total: totals[0],
        eager_total: totals[1],
        cow_faults,
    }
}

/// Runs the sweep and returns the figure.
pub fn run(footprint: u64, fractions: &[f64]) -> FigureData {
    let mut fig = FigureData::new(
        "fig_cow_storm",
        "total cost of fork + child writes, COW vs eager",
        "touch fraction",
        "total us",
    );
    let mut cow = Series::new("cow_fork_total");
    let mut eager = Series::new("eager_fork_total");
    for (i, &f) in fractions.iter().enumerate() {
        let cell = measure(footprint, f, 1000 + i as u64);
        cow.push(f, cell.cow_total as f64 / CYCLES_PER_US as f64);
        eager.push(f, cell.eager_total as f64 / CYCLES_PER_US as f64);
    }
    fig.series = vec![cow, eager];
    fig
}

/// Finds the crossover fraction where COW stops winning, if any.
pub fn crossover(fig: &FigureData) -> Option<f64> {
    let cow = fig.series("cow_fork_total")?;
    let eager = fig.series("eager_fork_total")?;
    for (c, e) in cow.points.iter().zip(&eager.points) {
        if c.y > e.y {
            return Some(c.x);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cow_wins_untouched_loses_fully_touched() {
        let none = measure(2048, 0.0, 1);
        assert!(
            none.cow_total < none.eager_total / 2,
            "untouched: COW {} vs eager {}",
            none.cow_total,
            none.eager_total
        );
        assert_eq!(none.cow_faults, 0);

        let all = measure(2048, 1.0, 2);
        assert!(
            all.cow_total > all.eager_total,
            "fully touched: COW {} must exceed eager {}",
            all.cow_total,
            all.eager_total
        );
        assert_eq!(all.cow_faults, 2048);
    }

    #[test]
    fn crossover_exists_and_is_interior() {
        let fig = run(1024, &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
        let x = crossover(&fig).expect("COW must stop winning somewhere");
        assert!(x > 0.0 && x <= 1.0, "crossover at {x}");
    }

    #[test]
    fn cow_total_monotone_in_fraction() {
        let a = measure(1024, 0.2, 3);
        let b = measure(1024, 0.8, 3);
        assert!(b.cow_total > a.cow_total);
        assert!(b.cow_faults > a.cow_faults);
    }
}
