//! E12: pressure storm — the spawn fast path degrades gracefully.
//!
//! The fast path (E11) wins its latency by *holding* memory: pinned
//! image-cache frames and pre-built warm-pool children. That is exactly
//! the memory a loaded machine wants back. This experiment drives the
//! machine into memory pressure with a wave of faulting workers and
//! compares two worlds:
//!
//! * **shrinkers registered** (the default): the kernel's reclaim pass
//!   drains warm children (LRU) and evicts cold image entries. Demand
//!   that would have OOM-killed is absorbed; the only casualty is spawn
//!   latency, which degrades to the classic-path cost while the caches
//!   are empty and recovers after relief.
//! * **shrinkers cleared** (the baseline failure mode): the kernel
//!   cannot see the caches. The OOM killer fires and — because parked
//!   children are OOM-exempt — it kills *innocent workers* while
//!   hundreds of reclaimable frames sit pinned.

use crate::os::{Os, OsConfig};
use fpr_api::SpawnAttrs;
use fpr_kernel::{Errno, MachineConfig, Pid};
use fpr_mem::{OvercommitPolicy, PressureLevel, Prot, Share, CYCLES_PER_US};
use fpr_trace::{FigureData, ProcessShape, Series};

/// Warm-pool children parked before the storm (also the recovery target).
pub const POOL_PREFILL: usize = 8;
/// Physical frames of the storm machine: small enough that the caches
/// are a meaningful fraction of memory.
pub const STORM_FRAMES: u64 = 1024;
/// Faulting workers the storm demand is spread across.
const WORKERS: usize = 4;

/// Everything one storm arm observed.
#[derive(Debug, Clone, PartialEq)]
pub struct PressureOutcome {
    /// Whether the fast-path caches were registered as shrinkers.
    pub shrinkers: bool,
    /// Total pages the workers successfully touched.
    pub touched_pages: u64,
    /// OOM victims, in kill order.
    pub oom_victims: Vec<Pid>,
    /// Whether the first OOM victim was a bystander (not the worker
    /// whose write triggered the kill) — the paper's "innocent victim".
    pub first_victim_was_bystander: bool,
    /// Pinned (reclaimable-but-unseen) cache frames at first kill.
    pub pinned_frames_at_first_kill: u64,
    /// Spawn cost before the storm (warm pool hit), cycles.
    pub spawn_before: u64,
    /// Spawn cost at peak pressure (caches drained), cycles.
    pub spawn_during: u64,
    /// Spawn cost after relief and re-prefill, cycles.
    pub spawn_after: u64,
    /// Parked children before / at peak / after relief.
    pub pool_occupancy: [usize; 3],
    /// Pinned image-cache frames before / at peak / after relief.
    pub cache_frames: [u64; 3],
    /// Worst pressure level seen during the storm.
    pub peak_pressure: PressureLevel,
    /// Kernel reclaim passes run by the storm.
    pub reclaim_passes: u64,
    /// Frames those passes recovered.
    pub frames_reclaimed: u64,
    /// PSI-style stall cycles charged to reclaim.
    pub stall_cycles: u64,
}

fn storm_config() -> OsConfig {
    OsConfig {
        machine: MachineConfig {
            frames: STORM_FRAMES,
            overcommit: OvercommitPolicy::Always,
            ..MachineConfig::default()
        },
        ..Default::default()
    }
}

fn boot_world() -> (Os, Pid) {
    let mut os = Os::boot(storm_config());
    let parent = os
        .make_parent(ProcessShape::with_heap(32))
        .expect("parent fits");
    os.enable_spawn_fastpath().expect("enable");
    os.pool_prefill("/bin/tool", POOL_PREFILL).expect("prefill");
    (os, parent)
}

/// Spawns `/bin/tool` from `parent`, retires the child, returns cycles.
fn spawn_once(os: &mut Os, parent: Pid) -> u64 {
    let (child, cycles) = os.measure(|os| {
        os.spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
            .expect("spawn survives the storm")
    });
    os.kernel.exit(child, 0).expect("exit");
    os.kernel.waitpid(parent, Some(child)).expect("reap");
    cycles
}

/// The classic-path reference cost: same machine, same parent shape,
/// fast path never enabled.
pub fn classic_spawn_cost() -> u64 {
    let mut os = Os::boot(storm_config());
    let parent = os
        .make_parent(ProcessShape::with_heap(32))
        .expect("parent fits");
    let (child, cycles) = os.measure(|os| {
        os.spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
            .expect("spawn")
    });
    let _ = child;
    cycles
}

fn pool_parked(os: &Os) -> usize {
    os.fastpath().expect("enabled").pool().total_parked()
}

fn cache_frames(os: &Os) -> u64 {
    os.fastpath().expect("enabled").cache().cached_frames()
}

/// Runs one storm arm. `demand` caps total pages touched; `None` means
/// "until the reclaimable caches are exhausted" (shrinker arm only).
pub fn run_storm(shrinkers: bool, demand: Option<u64>) -> PressureOutcome {
    let (mut os, parent) = boot_world();
    if !shrinkers {
        os.kernel.clear_shrinkers();
    }

    let pool_before = pool_parked(&os);
    let cache_before = cache_frames(&os);
    let spawn_before = spawn_once(&mut os, parent);
    // The warm-up spawn consumed a parked child; top the pool back up so
    // both arms enter the storm with the full prefill.
    os.pool_prefill("/bin/tool", 1).expect("top up");

    // Workers reserve generous anonymous regions up front (Always-mode
    // overcommit admits them on credit) and then fault pages in
    // round-robin: the bill arrives one page at a time.
    let chunk = STORM_FRAMES / WORKERS as u64;
    let workers: Vec<(Pid, fpr_mem::Vpn)> = (0..WORKERS)
        .map(|i| {
            let w = os
                .kernel
                .allocate_process(os.init, &format!("worker{i}"))
                .expect("worker");
            let base = os
                .kernel
                .mmap_anon(w, chunk, Prot::RW, Share::Private)
                .expect("admitted on credit");
            (w, base)
        })
        .collect();

    let mut touched = [0u64; WORKERS];
    let mut alive = [true; WORKERS];
    let mut total = 0u64;
    let mut peak = PressureLevel::None;
    let mut first_victim_was_bystander = false;
    let mut pinned_at_first_kill = 0u64;
    let drained =
        |os: &Os| pool_parked(os) == 0 && cache_frames(os) == 0;

    'storm: loop {
        let before = total;
        for (i, &(w, base)) in workers.iter().enumerate() {
            if !alive[i] || touched[i] >= chunk {
                continue;
            }
            if let Some(d) = demand {
                if total >= d {
                    break 'storm;
                }
            } else if drained(&os) {
                break 'storm;
            }
            loop {
                match os.kernel.write_mem(w, base.add(touched[i]), total) {
                    Ok(_) => {
                        touched[i] += 1;
                        total += 1;
                        break;
                    }
                    // With shrinkers the kernel already direct-reclaimed
                    // before surfacing this: memory is genuinely full.
                    Err(Errno::Enomem) if shrinkers => break 'storm,
                    Err(Errno::Enomem) => match os.kernel.oom_kill() {
                        Some(victim) => {
                            if os.kernel.oom_kills.len() == 1 {
                                first_victim_was_bystander = victim != w;
                                pinned_at_first_kill = cache_frames(&os);
                            }
                            for (j, &(wj, _)) in workers.iter().enumerate() {
                                if wj == victim {
                                    alive[j] = false;
                                }
                            }
                            if victim == w {
                                break;
                            }
                        }
                        None => break 'storm,
                    },
                    Err(e) => panic!("unexpected storm error: {e}"),
                }
            }
            peak = peak.max(os.kernel.memory_pressure());
        }
        if total == before {
            // No worker made progress this round: demand met or everyone
            // is dead/capped.
            break;
        }
    }

    let pool_during = pool_parked(&os);
    let cache_during = cache_frames(&os);
    // At peak pressure the pool is empty and the cache cold (shrinker
    // arm): this spawn rides the classic path.
    let spawn_during = spawn_once(&mut os, parent);

    // Relief: the storm passes — workers exit and their frames return.
    for (i, &(w, _)) in workers.iter().enumerate() {
        if alive[i] {
            os.kernel.exit(w, 0).expect("worker exit");
        }
        os.kernel.waitpid(os.init, Some(w)).expect("reap worker");
    }
    // Recovery: re-prefill restores the warm pool (and re-warms the
    // image cache as a side effect of loading the children).
    let refill = POOL_PREFILL.saturating_sub(pool_parked(&os));
    os.pool_prefill("/bin/tool", refill).expect("re-prefill");
    let spawn_after = spawn_once(&mut os, parent);
    os.pool_prefill("/bin/tool", 1).expect("top up");

    os.kernel.check_invariants().expect("invariants hold");
    let stats = os.kernel.reclaim_stats();
    PressureOutcome {
        shrinkers,
        touched_pages: total,
        oom_victims: os.kernel.oom_kills.clone(),
        first_victim_was_bystander,
        pinned_frames_at_first_kill: pinned_at_first_kill,
        spawn_before,
        spawn_during,
        spawn_after,
        pool_occupancy: [pool_before, pool_during, pool_parked(&os)],
        cache_frames: [cache_before, cache_during, cache_frames(&os)],
        peak_pressure: peak,
        reclaim_passes: stats.passes,
        frames_reclaimed: stats.frames_reclaimed,
        stall_cycles: os.kernel.phys.stall_cycles_total(),
    }
}

/// Runs both arms with identical demand: the shrinker arm sizes the
/// storm adaptively (touch until the caches are dry), the baseline then
/// replays the same number of pages without reclaim.
pub fn run_pair() -> (PressureOutcome, PressureOutcome) {
    let with = run_storm(true, None);
    let without = run_storm(false, Some(with.touched_pages));
    (with, without)
}

// ---------------------------------------------------------------------
// E13: the swap tier under a storm that exceeds physical memory.
// ---------------------------------------------------------------------

/// Swap slots of the E13 machine: another machine's worth of backing
/// store below the [`STORM_FRAMES`] of RAM.
pub const SWAP_SLOTS: u64 = 1024;

/// Everything one E13 arm observed.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapOutcome {
    /// Whether the machine had a swap device.
    pub swap: bool,
    /// Total pages the workers successfully dirtied.
    pub touched_pages: u64,
    /// OOM victims, in kill order.
    pub oom_victims: Vec<Pid>,
    /// Workers still alive at the end of the storm.
    pub survivors: usize,
    /// Pages evicted to the device, cumulative.
    pub swap_outs: u64,
    /// Pages faulted back from the device, cumulative.
    pub swap_ins: u64,
    /// Swap-ins of recently evicted pages (working-set misses).
    pub refaults: u64,
    /// Most slots in use at any sampled instant.
    pub peak_slots_used: u64,
    /// Whether the refault-rate thrash signal ever asserted.
    pub thrash_seen: bool,
    /// Worst pressure level seen.
    pub peak_pressure: PressureLevel,
    /// PSI-style stall cycles charged to reclaim + swap passes.
    pub stall_cycles: u64,
}

/// Runs one E13 arm: four workers dirty 1.5× physical memory of private
/// anonymous pages. With a swap device the reclaim tier below the
/// shrinkers evicts cold pages and every write lands; without one the
/// demand ends in OOM kills. `demand` caps total pages touched; `None`
/// lets the arm run until RAM *and* swap are genuinely full.
///
/// The swap arm finishes with a deliberate refault loop — re-reading
/// just-evicted pages until the thrash signal asserts — so the figure
/// carries the pathological regime too, not only the win.
pub fn run_swap_storm(swap: bool, demand: Option<u64>) -> SwapOutcome {
    let mut os = Os::boot(OsConfig {
        machine: MachineConfig {
            frames: STORM_FRAMES,
            swap_slots: if swap { SWAP_SLOTS } else { 0 },
            overcommit: OvercommitPolicy::Always,
            ..MachineConfig::default()
        },
        ..Default::default()
    });

    // 1.5x physical memory of demand, spread across the workers.
    let chunk = (STORM_FRAMES + SWAP_SLOTS / 2) / WORKERS as u64;
    let workers: Vec<(Pid, fpr_mem::Vpn)> = (0..WORKERS)
        .map(|i| {
            let w = os
                .kernel
                .allocate_process(os.init, &format!("worker{i}"))
                .expect("worker");
            let base = os
                .kernel
                .mmap_anon(w, chunk, Prot::RW, Share::Private)
                .expect("admitted on credit");
            (w, base)
        })
        .collect();

    let mut touched = [0u64; WORKERS];
    let mut alive = [true; WORKERS];
    let mut total = 0u64;
    let mut peak = PressureLevel::None;
    let mut peak_slots = 0u64;

    'storm: loop {
        let before = total;
        for (i, &(w, base)) in workers.iter().enumerate() {
            if !alive[i] || touched[i] >= chunk {
                continue;
            }
            if let Some(d) = demand {
                if total >= d {
                    break 'storm;
                }
            }
            loop {
                match os.kernel.write_mem(w, base.add(touched[i]), total) {
                    Ok(_) => {
                        touched[i] += 1;
                        total += 1;
                        break;
                    }
                    // With swap, the kernel already ran the whole reclaim
                    // ladder before surfacing this: RAM and device are
                    // genuinely full.
                    Err(Errno::Enomem) if swap => break 'storm,
                    Err(Errno::Enomem) => match os.kernel.oom_kill() {
                        Some(victim) => {
                            for (j, &(wj, _)) in workers.iter().enumerate() {
                                if wj == victim {
                                    alive[j] = false;
                                }
                            }
                            if victim == w {
                                break;
                            }
                        }
                        None => break 'storm,
                    },
                    Err(e) => panic!("unexpected storm error: {e}"),
                }
            }
            peak = peak.max(os.kernel.memory_pressure());
            peak_slots = peak_slots.max(os.kernel.phys.swap().used_slots());
        }
        if total == before {
            break;
        }
    }

    // The thrash regime: walk the cold front of each surviving worker's
    // region. Every read swaps the page back in *clean*, which makes it
    // the next eviction's first candidate — rereading the same window
    // turns the device into a revolving door until the refault-majority
    // signal asserts.
    let mut thrash_seen = false;
    if swap {
        'thrash: for _round in 0..8 {
            for (i, &(w, base)) in workers.iter().enumerate() {
                if !alive[i] || touched[i] == 0 {
                    continue;
                }
                for j in 0..touched[i].min(16) {
                    os.kernel.read_mem(w, base.add(j)).expect("reread");
                    if os.kernel.swap_thrashing() {
                        thrash_seen = true;
                        break 'thrash;
                    }
                }
            }
        }
    }

    os.kernel.check_invariants().expect("invariants hold");
    let stats = os.kernel.phys.swap().stats();
    SwapOutcome {
        swap,
        touched_pages: total,
        oom_victims: os.kernel.oom_kills.clone(),
        survivors: alive.iter().filter(|a| **a).count(),
        swap_outs: stats.swap_outs,
        swap_ins: stats.swap_ins,
        refaults: stats.refaults,
        peak_slots_used: peak_slots.max(os.kernel.phys.swap().used_slots()),
        thrash_seen,
        peak_pressure: peak,
        stall_cycles: os.kernel.phys.stall_cycles_total(),
    }
}

/// Runs both E13 arms with identical demand: the swap arm sizes the
/// storm adaptively (dirty pages until RAM and device are full), the
/// swapless baseline replays the same page count and shows the kills.
pub fn run_swap_pair() -> (SwapOutcome, SwapOutcome) {
    let with = run_swap_storm(true, None);
    let without = run_swap_storm(false, Some(with.touched_pages));
    (with, without)
}

/// Builds the E13 figure: pages absorbed and the OOM body count with
/// and without the swap tier, plus the device traffic that paid for it.
pub fn run_swap() -> FigureData {
    let (with, without) = run_swap_pair();
    let mut fig = FigureData::new(
        "fig_swap",
        "a swap tier absorbs a storm of 1.5x physical memory that otherwise ends in OOM kills",
        "metric (0=pages dirtied, 1=oom kills, 2=surviving workers)",
        "pages / count",
    );
    let mut s_with = Series::new("with swap");
    s_with.push(0.0, with.touched_pages as f64);
    s_with.push(1.0, with.oom_victims.len() as f64);
    s_with.push(2.0, with.survivors as f64);
    let mut s_without = Series::new("no swap");
    s_without.push(0.0, without.touched_pages as f64);
    s_without.push(1.0, without.oom_victims.len() as f64);
    s_without.push(2.0, without.survivors as f64);
    let mut traffic = Series::new("device traffic (with swap)");
    traffic.push(0.0, with.swap_outs as f64);
    traffic.push(1.0, with.swap_ins as f64);
    traffic.push(2.0, with.refaults as f64);
    fig.series = vec![s_with, s_without, traffic];
    fig
}

/// Builds the E12 figure: spawn latency across the three storm phases,
/// against the classic-path reference, plus the OOM body count.
pub fn run() -> FigureData {
    let (with, without) = run_pair();
    let classic = classic_spawn_cost();
    let us = |c: u64| c as f64 / CYCLES_PER_US as f64;

    let mut fig = FigureData::new(
        "fig_pressure",
        "spawn latency and OOM kills through a memory-pressure storm",
        "phase (0=calm, 1=storm peak, 2=after relief)",
        "spawn latency us / kill count",
    );
    let mut fast = Series::new("spawn (shrinkers)");
    fast.push(0.0, us(with.spawn_before));
    fast.push(1.0, us(with.spawn_during));
    fast.push(2.0, us(with.spawn_after));
    let mut reference = Series::new("classic spawn (reference)");
    for x in 0..3 {
        reference.push(x as f64, us(classic));
    }
    let mut pool = Series::new("parked children (shrinkers)");
    for (x, &n) in with.pool_occupancy.iter().enumerate() {
        pool.push(x as f64, n as f64);
    }
    let mut kills_with = Series::new("oom kills (shrinkers)");
    let mut kills_without = Series::new("oom kills (no shrinkers)");
    kills_with.push(1.0, with.oom_victims.len() as f64);
    kills_without.push(1.0, without.oom_victims.len() as f64);
    fig.series = vec![fast, reference, pool, kills_with, kills_without];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinker_storm_absorbs_demand_without_killing() {
        let o = run_storm(true, None);
        assert!(o.oom_victims.is_empty(), "no kills: {:?}", o.oom_victims);
        assert!(o.reclaim_passes >= 1, "the storm forced reclaim");
        assert!(o.frames_reclaimed > 0);
        assert!(o.stall_cycles > 0, "reclaim stalls are accounted");
        assert!(
            o.peak_pressure >= PressureLevel::High,
            "storm reached {:?}",
            o.peak_pressure
        );
        // The caches were fully drained at peak…
        assert_eq!(o.pool_occupancy[1], 0, "pool drained at peak");
        assert_eq!(o.cache_frames[1], 0, "cache evicted at peak");
        // …and recover to prefill levels after relief.
        assert_eq!(o.pool_occupancy[2], POOL_PREFILL, "pool refilled");
        assert!(o.cache_frames[2] >= o.cache_frames[0], "cache re-warmed");
    }

    #[test]
    fn latency_degrades_to_classic_and_recovers() {
        let o = run_storm(true, None);
        let classic = classic_spawn_cost();
        assert!(
            o.spawn_before < o.spawn_during,
            "calm pool hit {} must beat the degraded spawn {}",
            o.spawn_before,
            o.spawn_during
        );
        assert!(
            o.spawn_after < o.spawn_during,
            "post-relief spawn {} must beat the degraded spawn {}",
            o.spawn_after,
            o.spawn_during
        );
        // The degraded spawn rides the classic path: same cost class.
        let ratio = o.spawn_during as f64 / classic as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "degraded spawn {} vs classic {} (ratio {ratio:.3})",
            o.spawn_during,
            classic
        );
    }

    #[test]
    fn baseline_kills_innocents_while_reclaimable_frames_sit_pinned() {
        let (with, without) = run_pair();
        assert!(with.oom_victims.is_empty());
        assert!(
            !without.oom_victims.is_empty(),
            "same demand without shrinkers must OOM-kill"
        );
        assert!(
            without.pinned_frames_at_first_kill > 0,
            "reclaimable cache frames sat pinned while the killer fired"
        );
        assert!(
            without.first_victim_was_bystander,
            "the OOM killer shot a worker that was not even faulting"
        );
        // The exempt pool children survived the massacre.
        assert_eq!(without.pool_occupancy[1], POOL_PREFILL);
    }

    #[test]
    fn figure_renders_with_all_series() {
        let fig = run();
        assert_eq!(fig.series.len(), 5);
        assert!(fig.series("spawn (shrinkers)").is_some());
        let kills = fig.series("oom kills (no shrinkers)").unwrap();
        assert!(kills.points[0].y >= 1.0);
        let none = fig.series("oom kills (shrinkers)").unwrap();
        assert_eq!(none.points[0].y, 0.0);
        assert!(fig.render().contains("fig_pressure"));
    }

    #[test]
    fn swap_storm_absorbs_oversized_demand_without_killing() {
        let o = run_swap_storm(true, None);
        assert!(o.oom_victims.is_empty(), "no kills: {:?}", o.oom_victims);
        assert_eq!(o.survivors, WORKERS, "every worker lived");
        assert!(
            o.touched_pages > STORM_FRAMES,
            "the storm dirtied {} pages, more than the {} frames of RAM",
            o.touched_pages,
            STORM_FRAMES
        );
        assert!(o.swap_outs > 0, "the tier evicted to the device");
        assert!(o.peak_slots_used > 0);
        assert!(o.stall_cycles > 0, "swap stalls are accounted");
        assert!(
            o.peak_pressure >= PressureLevel::High,
            "storm reached {:?}",
            o.peak_pressure
        );
        assert!(o.thrash_seen, "the refault loop asserted the thrash signal");
        assert!(o.refaults > 0);
        assert!(o.swap_ins > 0);
    }

    #[test]
    fn swapless_baseline_kills_under_the_same_demand() {
        let (with, without) = run_swap_pair();
        assert!(with.oom_victims.is_empty(), "swap arm must absorb the storm");
        assert!(
            !without.oom_victims.is_empty(),
            "same demand without swap must OOM-kill"
        );
        assert!(without.survivors < WORKERS);
        assert_eq!(without.swap_outs, 0, "no device, no traffic");
    }

    #[test]
    fn swap_figure_renders_with_all_series() {
        let fig = run_swap();
        assert_eq!(fig.series.len(), 3);
        let with = fig.series("with swap").unwrap();
        assert_eq!(with.points[1].y, 0.0, "zero kills with swap");
        let without = fig.series("no swap").unwrap();
        assert!(without.points[1].y >= 1.0, "kills without swap");
        assert!(fig.render().contains("fig_swap"));
    }
}
