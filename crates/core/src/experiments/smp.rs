//! E16: fig_smp — process-creation throughput vs core count, and where
//! fork stops scaling.
//!
//! Three arms, each swept over 1/2/4/8 worker threads (real OS threads,
//! virtual time — see `crate::smp`):
//!
//! * **fork_cow_shared** — every worker forks children of *one* parent
//!   in *one* cell. This is the paper's claim made concrete: fork COW
//!   serializes on the parent's mm, so adding cores adds nothing.
//! * **fork_cow_private** — one cell (and parent) per worker. Same
//!   syscall, no shared mm: throughput scales with cores, showing the
//!   collapse above is the API's sharing, not the machine.
//! * **spawn_fast** — one cell per worker, children built by the spawn
//!   fast path from a per-cell warm pool. Scales like the private arm
//!   while doing less work per op: the fork-free design the paper
//!   recommends composes with multicore instead of fighting it.
//!
//! Each arm also reports the named-lock contention counters
//! ([`fpr_trace::metrics::lock_stats`]) accumulated during its measured
//! window, so the figure can say *where* the serialized arms waited
//! (mm vs pid vs buddy vs tlb). Single-threaded arms report zero
//! contention by construction — a thread never waits on itself.

use crate::os::OsConfig;
use crate::smp::SmpOs;
use fpr_api::SpawnAttrs;
use fpr_kernel::{MachineConfig, Pid};
use fpr_mem::OvercommitPolicy;
use fpr_trace::{metrics, FigureData, ProcessShape, Series, TableData, CYCLES_PER_US};
use std::collections::BTreeMap;

/// Thread counts swept by [`run`].
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Process-creation ops each worker performs per measured window.
pub const OPS_PER_WORKER: u64 = 48;

/// Heap pages of each fork arm's parent (big enough that the COW
/// page-table pass dominates the op).
const PARENT_HEAP: u64 = 256;

const SPAWN_BIN: &str = "/bin/sh";

fn machine() -> MachineConfig {
    MachineConfig {
        frames: 65_536,
        overcommit: OvercommitPolicy::Always,
        ..MachineConfig::default()
    }
}

/// One arm at one thread count.
#[derive(Debug, Clone)]
pub struct SmpPoint {
    /// Arm label.
    pub arm: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Total creation ops completed.
    pub ops: u64,
    /// Virtual wall time: the slowest worker's elapsed cycles.
    pub wall_cycles: u64,
    /// `ops / wall`, in ops per virtual millisecond.
    pub throughput: f64,
    /// Per-lock contention accumulated during the measured window.
    pub contention: BTreeMap<&'static str, metrics::LockStats>,
    /// Structural violations found after the run (must be empty).
    pub violations: usize,
}

fn throughput(ops: u64, wall_cycles: u64) -> f64 {
    if wall_cycles == 0 {
        return 0.0;
    }
    ops as f64 / (wall_cycles as f64 / (CYCLES_PER_US as f64 * 1000.0))
}

fn measure(
    arm: &'static str,
    threads: usize,
    smp: &SmpOs,
    f: impl Fn(usize, &SmpOs) + Send + Sync,
) -> SmpPoint {
    metrics::reset_lock_stats();
    let elapsed = smp.run(threads, f);
    let wall = elapsed.into_iter().max().unwrap_or(0);
    let ops = OPS_PER_WORKER * threads as u64;
    SmpPoint {
        arm,
        threads,
        ops,
        wall_cycles: wall,
        throughput: throughput(ops, wall),
        contention: metrics::lock_stats(),
        violations: smp.violations().len(),
    }
}

/// One fork+reap op against `parent` in the locked cell `c`.
fn fork_op(smp: &SmpOs, c: usize, parent: Pid) {
    let mut os = smp.cell(c).lock();
    let child = os.fork(parent).expect("fork");
    os.kernel.exit(child, 0).expect("exit");
    os.kernel.waitpid(parent, Some(child)).expect("reap");
}

/// fork_cow_shared: all workers fork one parent in one cell.
pub fn fork_cow_shared(threads: usize) -> SmpPoint {
    let smp = SmpOs::boot(OsConfig {
        machine: machine(),
        ..Default::default()
    }, 1);
    let parent = {
        let mut os = smp.cell(0).lock();
        os.make_parent(ProcessShape::with_heap(PARENT_HEAP))
            .expect("parent fits")
    };
    measure("fork_cow_shared", threads, &smp, move |_, smp| {
        for _ in 0..OPS_PER_WORKER {
            fork_op(smp, 0, parent);
        }
    })
}

/// fork_cow_private: one cell and one parent per worker.
pub fn fork_cow_private(threads: usize) -> SmpPoint {
    let smp = SmpOs::boot(OsConfig {
        machine: machine(),
        ..Default::default()
    }, threads);
    let parents: Vec<Pid> = (0..threads)
        .map(|c| {
            let mut os = smp.cell(c).lock();
            os.make_parent(ProcessShape::with_heap(PARENT_HEAP))
                .expect("parent fits")
        })
        .collect();
    measure("fork_cow_private", threads, &smp, move |t, smp| {
        for _ in 0..OPS_PER_WORKER {
            fork_op(smp, t, parents[t]);
        }
    })
}

/// spawn_fast: one cell per worker, warm-pool spawns instead of forks.
pub fn spawn_fast(threads: usize) -> SmpPoint {
    let smp = SmpOs::boot(OsConfig {
        machine: machine(),
        ..Default::default()
    }, threads);
    for c in 0..threads {
        let mut os = smp.cell(c).lock();
        os.enable_spawn_fastpath().expect("fast path on");
        os.pool_prefill(SPAWN_BIN, 4).expect("prefill");
    }
    measure("spawn_fast", threads, &smp, move |t, smp| {
        for _ in 0..OPS_PER_WORKER {
            let mut os = smp.cell(t).lock();
            let init = os.init;
            let child = os
                .spawn(init, SPAWN_BIN, &[], &SpawnAttrs::default())
                .expect("spawn");
            os.kernel.exit(child, 0).expect("exit");
            os.kernel.waitpid(init, Some(child)).expect("reap");
            os.pool_autoscale(SPAWN_BIN, 4).expect("autoscale");
        }
    })
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct SmpOutcome {
    /// Every (arm, thread-count) measurement.
    pub points: Vec<SmpPoint>,
}

impl SmpOutcome {
    /// The measured point for `(arm, threads)`.
    pub fn point(&self, arm: &str, threads: usize) -> Option<&SmpPoint> {
        self.points
            .iter()
            .find(|p| p.arm == arm && p.threads == threads)
    }

    /// Throughput at `threads` relative to the same arm at one thread.
    pub fn speedup(&self, arm: &str, threads: usize) -> f64 {
        let one = self.point(arm, 1).map(|p| p.throughput).unwrap_or(0.0);
        let t = self.point(arm, threads).map(|p| p.throughput).unwrap_or(0.0);
        if one == 0.0 {
            0.0
        } else {
            t / one
        }
    }

    /// Total contended acquisitions across all locks at one point.
    pub fn contended(&self, arm: &str, threads: usize) -> u64 {
        self.point(arm, threads)
            .map(|p| p.contention.values().map(|s| s.contended_acquires).sum())
            .unwrap_or(0)
    }

    /// Throughput-vs-threads figure, one series per arm.
    pub fn figure(&self) -> FigureData {
        let mut fig = FigureData::new(
            "fig_smp",
            "process-creation throughput vs worker threads (virtual time)",
            "worker threads",
            "ops/ms",
        );
        for arm in ["fork_cow_shared", "fork_cow_private", "spawn_fast"] {
            let mut s = Series::new(arm);
            for p in self.points.iter().filter(|p| p.arm == arm) {
                s.push(p.threads as f64, p.throughput);
            }
            fig.series.push(s);
        }
        fig
    }

    /// Where each arm waited: one row per (arm, threads, lock).
    pub fn contention_table(&self) -> TableData {
        let mut t = TableData::new(
            "tab_smp_contention",
            "lock contention by arm (virtual cycles)",
            &["arm", "threads", "lock", "contended", "wait_cycles"],
        );
        for p in &self.points {
            for (name, s) in &p.contention {
                t.push_row(vec![
                    p.arm.to_string(),
                    p.threads.to_string(),
                    (*name).to_string(),
                    s.contended_acquires.to_string(),
                    s.wait_cycles.to_string(),
                ]);
            }
        }
        t
    }
}

/// Runs every arm over [`THREADS`].
pub fn run() -> SmpOutcome {
    run_with(&THREADS)
}

/// Runs every arm over the given thread counts.
pub fn run_with(threads: &[usize]) -> SmpOutcome {
    let mut points = Vec::new();
    for &t in threads {
        points.push(fork_cow_shared(t));
        points.push(fork_cow_private(t));
        points.push(spawn_fast(t));
    }
    SmpOutcome { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // lock_stats is process-global and every arm resets it, so the E16
    // tests must not overlap in one test binary.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn shared_mm_collapses_private_scales() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = run_with(&[1, 4]);
        let shared = out.speedup("fork_cow_shared", 4);
        let private = out.speedup("fork_cow_private", 4);
        assert!(
            shared < 1.5,
            "shared-mm fork must not scale: speedup {shared:.2}"
        );
        assert!(
            private >= 2.0,
            "private-mm fork must scale past 2x at 4 threads: {private:.2}"
        );
        assert!(private > shared);
    }

    #[test]
    fn spawn_fastpath_outscales_shared_fork() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = run_with(&[1, 4]);
        let spawn = out.speedup("spawn_fast", 4);
        let shared = out.speedup("fork_cow_shared", 4);
        assert!(
            spawn > shared,
            "spawn fast path must scale strictly better than shared fork: \
             {spawn:.2} vs {shared:.2}"
        );
    }

    #[test]
    fn contention_appears_only_under_multicore() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = run_with(&[1, 4]);
        for arm in ["fork_cow_shared", "fork_cow_private", "spawn_fast"] {
            assert_eq!(
                out.contended(arm, 1),
                0,
                "{arm}: a single thread never contends with itself"
            );
        }
        let p = out.point("fork_cow_shared", 4).unwrap();
        let mm = p.contention.get("mm").expect("mm contention recorded");
        assert!(mm.contended_acquires > 0 && mm.wait_cycles > 0);
        assert_eq!(p.violations, 0);
    }

    #[test]
    fn figure_and_table_have_the_shape() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = run_with(&[1, 2]);
        let fig = out.figure();
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 2);
        }
        assert!(!out.contention_table().rows.is_empty());
    }
}
