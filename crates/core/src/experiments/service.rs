//! E15: service workload with tail latency — an open-loop FaaS/zygote
//! front end over every creation path.
//!
//! Every other bench measures one creation in isolation. This experiment
//! puts creation on the critical path of request serving, the paper's
//! zygote/server story: a front-end process receives an open-loop
//! Poisson stream of requests and serves each with a short-lived child,
//! drawing the creation path per request from a configurable mix —
//! spawn fast path (cache + warm pool), `fork(OnDemand)`+exec,
//! `fork(Cow)`+exec, `vfork`+exec, and the xproc builder. A simulated
//! clock advances in cycle time: arrivals come from deterministic
//! exponential gaps (`fpr-rng`), service work is metered by the kernel's
//! own cycle accounting, and a maintenance tick between requests runs
//! pressure-gated warm-pool autoscaling ([`crate::os::Os::pool_autoscale`]) —
//! checkout consumes a parked child per request, so without the tick the
//! fast path starves.
//!
//! Reported per path: requests served and p50/p95/p99 creation-to-exit
//! latency extracted from `fpr-trace` log2 histograms
//! ([`fpr_trace::metrics::Histogram::percentile`]). Reported overall:
//! sustained throughput against the offered rate and the arrival-to-exit
//! (sojourn) tail, which folds in queueing delay. A separate degradation
//! run ([`run_degradation`]) squeezes the same loop on a small machine:
//! a resident-worker storm drains the pool through the PR 5 shrinker
//! reclaim, spawn degrades to the classic path, the storm lifts, and the
//! autoscale tick restores the fast path — with zero OOM kills
//! throughout.

use crate::experiments::fig1::machine_for;
use crate::os::{Os, OsConfig};
use fpr_api::{ProcessBuilder, SpawnAttrs};
use fpr_kernel::{MachineConfig, Pid};
use fpr_mem::{ForkMode, OvercommitPolicy, PressureLevel, Prot, Share, CYCLES_PER_US};
use fpr_rng::Rng;
use fpr_trace::metrics::Histogram;
use fpr_trace::{FigureData, ProcessShape, Series};

/// The service binary every request execs.
pub const SERVICE_BIN: &str = "/bin/tool";

/// Simulated cycles per second (the cost model's 3 GHz clock).
pub const CYCLES_PER_SEC: f64 = CYCLES_PER_US as f64 * 1_000_000.0;

/// How a request's child is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CreationPath {
    /// `posix_spawn` through the warm pool + image cache.
    SpawnFast,
    /// `fork(OnDemand)` + exec.
    ForkOnDemand,
    /// Classic COW `fork` + exec — the paper's accused.
    ForkCow,
    /// `vfork` + exec.
    VforkExec,
    /// The cross-process builder.
    Xproc,
}

impl CreationPath {
    /// All paths, in reporting order.
    pub const ALL: [CreationPath; 5] = [
        CreationPath::SpawnFast,
        CreationPath::ForkOnDemand,
        CreationPath::ForkCow,
        CreationPath::VforkExec,
        CreationPath::Xproc,
    ];

    /// Series label for figures and reports.
    pub fn label(self) -> &'static str {
        match self {
            CreationPath::SpawnFast => "spawn(fastpath)",
            CreationPath::ForkOnDemand => "fork(OnDemand)+exec",
            CreationPath::ForkCow => "fork(Cow)+exec",
            CreationPath::VforkExec => "vfork+exec",
            CreationPath::Xproc => "xproc",
        }
    }
}

/// Tunables for one open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Requests in the run.
    pub requests: usize,
    /// Offered arrival rate, requests per simulated second.
    pub offered_rate: f64,
    /// Front-end heap pages (what the fork paths must duplicate).
    pub parent_heap_pages: u64,
    /// `(path, weight)` mix the per-request draw uses.
    pub mix: Vec<(CreationPath, u32)>,
    /// Warm-pool size the autoscale tick maintains.
    pub pool_target: usize,
    /// Run the autoscale tick every this many requests.
    pub autoscale_every: usize,
    /// Pages each request's child touches as its "work".
    pub work_pages: u64,
    /// Seed for arrivals, mix draws, and every ASLR layout.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            requests: 320,
            offered_rate: 60_000.0,
            parent_heap_pages: 4_096,
            mix: vec![
                (CreationPath::SpawnFast, 6),
                (CreationPath::ForkOnDemand, 4),
                (CreationPath::VforkExec, 3),
                (CreationPath::Xproc, 2),
                (CreationPath::ForkCow, 2),
            ],
            pool_target: 4,
            autoscale_every: 4,
            work_pages: 4,
            seed: 42,
        }
    }
}

/// Per-path latency record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStats {
    /// Which creation path.
    pub path: CreationPath,
    /// Requests served through it.
    pub served: u64,
    /// Creation-to-exit latency (cycles) in log2 buckets.
    pub hist: Histogram,
}

/// Everything one open-loop run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// The configuration that produced it.
    pub config: ServiceConfig,
    /// Requests completed (always `config.requests` — every request is
    /// served; overload shows up as sojourn, not drops).
    pub completed: u64,
    /// Virtual cycles from time zero to the last completion.
    pub makespan_cycles: u64,
    /// Completions per simulated second over the makespan.
    pub sustained_rate: f64,
    /// Of the makespan, cycles the server was actually serving.
    pub busy_cycles: u64,
    /// Per-path service-latency records, in [`CreationPath::ALL`] order.
    pub per_path: Vec<PathStats>,
    /// Arrival-to-exit latency (cycles): service plus queueing delay.
    pub sojourn: Histogram,
    /// Children the autoscale ticks rebuilt during the run.
    pub autoscaled: u64,
    /// OOM kills (must be zero at the default rate).
    pub oom_kills: usize,
}

impl ServiceOutcome {
    /// The stats for `path`.
    pub fn stats(&self, path: CreationPath) -> &PathStats {
        self.per_path
            .iter()
            .find(|s| s.path == path)
            .expect("all paths present")
    }
}

/// Draws an exponential inter-arrival gap with the given mean (cycles).
fn exp_gap(rng: &mut Rng, mean_cycles: f64) -> u64 {
    // gen_f64 is in [0, 1); 1-u is in (0, 1], so ln never sees zero.
    let u = rng.gen_f64();
    (-(1.0 - u).ln() * mean_cycles) as u64 + 1
}

/// Draws a path from the weighted mix.
fn draw_path(rng: &mut Rng, mix: &[(CreationPath, u32)]) -> CreationPath {
    let total: u64 = mix.iter().map(|(_, w)| *w as u64).sum();
    let mut roll = rng.gen_below(total);
    for &(path, w) in mix {
        if roll < w as u64 {
            return path;
        }
        roll -= w as u64;
    }
    unreachable!("weights sum to total")
}

/// Creates the request's child via `path`, runs the request body (touch
/// `work_pages`), exits and reaps it. The cycles this spends *is* the
/// creation-to-exit latency.
fn serve(os: &mut Os, parent: Pid, path: CreationPath, work_pages: u64) {
    let child = match path {
        CreationPath::SpawnFast => os
            .spawn(parent, SERVICE_BIN, &[], &SpawnAttrs::default())
            .expect("spawn serves the request"),
        CreationPath::ForkOnDemand => os
            .fork_exec(parent, SERVICE_BIN, ForkMode::OnDemand)
            .expect("fork(OnDemand)+exec serves the request"),
        CreationPath::ForkCow => os
            .fork_exec(parent, SERVICE_BIN, ForkMode::Cow)
            .expect("fork(Cow)+exec serves the request"),
        CreationPath::VforkExec => os
            .vfork_exec(parent, SERVICE_BIN)
            .expect("vfork+exec serves the request"),
        CreationPath::Xproc => os
            .spawn_builder(parent, ProcessBuilder::new(SERVICE_BIN))
            .expect("xproc serves the request")
            .pid,
    };
    if work_pages > 0 {
        let base = os
            .kernel
            .mmap_anon(child, work_pages, Prot::RW, Share::Private)
            .expect("request working set");
        os.kernel
            .populate(child, base, work_pages)
            .expect("touch working set");
    }
    os.kernel.exit(child, 0).expect("request done");
    os.kernel.waitpid(parent, Some(child)).expect("reap");
}

/// Runs the open-loop service: Poisson arrivals, single front end, one
/// child per request. The virtual clock advances to each arrival (the
/// server idles when the queue is empty) and then by the measured cycles
/// of the service; a request arriving while an earlier one is being
/// served waits, which is exactly the queueing delay the sojourn
/// histogram captures.
pub fn run_service(cfg: &ServiceConfig) -> ServiceOutcome {
    let mut os = Os::boot(OsConfig {
        machine: machine_for(cfg.parent_heap_pages),
        seed: cfg.seed,
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape::with_heap(cfg.parent_heap_pages))
        .expect("front end fits");
    os.enable_spawn_fastpath().expect("fast path on");
    os.pool_prefill(SERVICE_BIN, cfg.pool_target)
        .expect("prefill");

    // Independent deterministic streams: arrival gaps and mix draws must
    // not perturb the ASLR draws `Os` makes per creation.
    let mut seed_rng = Rng::seed_from_u64(cfg.seed);
    let mut arrival_rng = seed_rng.fork_stream();
    let mut mix_rng = seed_rng.fork_stream();

    let mean_gap = CYCLES_PER_SEC / cfg.offered_rate;
    let mut arrivals = Vec::with_capacity(cfg.requests);
    let mut t = 0u64;
    for _ in 0..cfg.requests {
        t += exp_gap(&mut arrival_rng, mean_gap);
        arrivals.push((t, draw_path(&mut mix_rng, &cfg.mix)));
    }

    let mut per_path: Vec<PathStats> = CreationPath::ALL
        .iter()
        .map(|&path| PathStats {
            path,
            served: 0,
            hist: Histogram::default(),
        })
        .collect();
    let mut sojourn = Histogram::default();
    let mut clock = 0u64;
    let mut busy = 0u64;
    let mut autoscaled = 0u64;

    for (i, &(arrival, path)) in arrivals.iter().enumerate() {
        if clock < arrival {
            clock = arrival; // idle until the request lands
        }
        if i % cfg.autoscale_every.max(1) == 0 {
            // Maintenance tick: pressure-gated pool top-up, charged to
            // the loop (it delays later requests, not this one's latency).
            let (built, tick_cycles) = os.measure(|os| {
                os.pool_autoscale(SERVICE_BIN, cfg.pool_target)
                    .expect("autoscale tick")
            });
            autoscaled += built as u64;
            clock += tick_cycles;
        }
        let ((), service_cycles) =
            os.measure(|os| serve(os, parent, path, cfg.work_pages));
        clock += service_cycles;
        busy += service_cycles;
        let st = per_path
            .iter_mut()
            .find(|s| s.path == path)
            .expect("path present");
        st.served += 1;
        st.hist.record(service_cycles);
        sojourn.record(clock - arrival);
    }

    os.kernel.check_invariants().expect("invariants hold");
    let completed = cfg.requests as u64;
    let sustained_rate = completed as f64 / (clock as f64 / CYCLES_PER_SEC);
    ServiceOutcome {
        config: cfg.clone(),
        completed,
        makespan_cycles: clock,
        sustained_rate,
        busy_cycles: busy,
        per_path,
        sojourn,
        autoscaled,
        oom_kills: os.kernel.oom_kills.len(),
    }
}

// ---------------------------------------------------------------------
// The degradation arm: the same serving loop under memory pressure.
// ---------------------------------------------------------------------

/// Frames of the degradation machine (matches the E12 storm scale).
pub const DEGRADATION_FRAMES: u64 = 1024;
/// Warm-pool target for the degradation arm.
pub const DEGRADATION_POOL: usize = 8;
/// Spawn-serve requests measured per phase.
const PHASE_REQUESTS: usize = 12;
/// Resident storm workers squeezing the machine.
const STORM_WORKERS: usize = 4;

/// What the pool-drain → classic-fallback → recovery sequence observed.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationOutcome {
    /// Spawn-serve latency (cycles) per phase: calm median, first
    /// post-drain request (the full classic fallback), recovered median.
    pub spawn_latency: [u64; 3],
    /// Parked warm children at each phase boundary.
    pub pool_parked: [usize; 3],
    /// Children the autoscale tick built during the storm (must be 0:
    /// the gate refuses under pressure).
    pub storm_autoscale_built: usize,
    /// Children the tick rebuilt after relief.
    pub recovery_autoscale_built: usize,
    /// Classic-path reference cost on the same machine (cycles).
    pub classic_reference: u64,
    /// Worst pressure level the storm reached.
    pub peak_pressure: PressureLevel,
    /// Kernel reclaim passes the storm forced.
    pub reclaim_passes: u64,
    /// OOM kills across all three phases (must be zero).
    pub oom_kills: usize,
}

fn degradation_config() -> OsConfig {
    OsConfig {
        machine: MachineConfig {
            frames: DEGRADATION_FRAMES,
            overcommit: OvercommitPolicy::Always,
            ..MachineConfig::default()
        },
        ..Default::default()
    }
}

/// Spawn-serve latencies over [`PHASE_REQUESTS`] requests.
fn phase_samples(os: &mut Os, parent: Pid) -> Vec<u64> {
    (0..PHASE_REQUESTS)
        .map(|_| {
            let ((), cycles) =
                os.measure(|os| serve(os, parent, CreationPath::SpawnFast, 0));
            cycles
        })
        .collect()
}

/// Median of spawn-serve latencies over [`PHASE_REQUESTS`] requests.
fn phase_latency(os: &mut Os, parent: Pid) -> u64 {
    let mut samples = phase_samples(os, parent);
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The classic-path reference on the degradation machine: same parent
/// shape and request body, fast path never enabled.
pub fn degraded_reference_cost() -> u64 {
    let mut os = Os::boot(degradation_config());
    let parent = os
        .make_parent(ProcessShape::with_heap(32))
        .expect("parent fits");
    phase_latency(&mut os, parent)
}

/// Drives the serving loop through pool-drain and back: a calm phase
/// (pool hits), a resident-worker storm that forces shrinker reclaim to
/// drain the pool and image cache (spawn degrades to the classic path;
/// the autoscale tick refuses to refill against the pressure), then
/// relief and an autoscale-driven recovery. Nobody is OOM-killed at any
/// point — that is the whole point.
pub fn run_degradation() -> DegradationOutcome {
    let mut os = Os::boot(degradation_config());
    let parent = os
        .make_parent(ProcessShape::with_heap(32))
        .expect("parent fits");
    os.enable_spawn_fastpath().expect("fast path on");
    os.pool_prefill(SERVICE_BIN, DEGRADATION_POOL)
        .expect("prefill");

    // Phase 0 — calm: requests ride the pool; the tick keeps it topped.
    let calm = phase_latency(&mut os, parent);
    os.pool_autoscale(SERVICE_BIN, DEGRADATION_POOL)
        .expect("calm top-up");
    let pool_calm = pool_parked(&os);

    // Phase 1 — storm: resident workers fault in pages until shrinker
    // reclaim has drained both fast-path caches dry.
    let chunk = DEGRADATION_FRAMES / STORM_WORKERS as u64;
    let workers: Vec<(Pid, fpr_mem::Vpn)> = (0..STORM_WORKERS)
        .map(|i| {
            let w = os
                .kernel
                .allocate_process(os.init, &format!("svc_worker{i}"))
                .expect("worker");
            let base = os
                .kernel
                .mmap_anon(w, chunk, Prot::RW, Share::Private)
                .expect("admitted on credit");
            (w, base)
        })
        .collect();
    let mut touched = [0u64; STORM_WORKERS];
    let mut peak = PressureLevel::None;
    'storm: loop {
        let drained = pool_parked(&os) == 0 && cached_frames(&os) == 0;
        if drained {
            break 'storm;
        }
        let mut progressed = false;
        for (i, &(w, base)) in workers.iter().enumerate() {
            if touched[i] >= chunk {
                continue;
            }
            match os.kernel.write_mem(w, base.add(touched[i]), 1) {
                Ok(_) => {
                    touched[i] += 1;
                    progressed = true;
                }
                Err(fpr_kernel::Errno::Enomem) => break 'storm,
                Err(e) => panic!("unexpected storm error: {e}"),
            }
            peak = peak.max(os.kernel.memory_pressure());
        }
        if !progressed {
            break;
        }
    }
    let pool_storm = pool_parked(&os);
    // The tick must refuse to grow the pool into the storm.
    let storm_autoscale_built = os
        .pool_autoscale(SERVICE_BIN, DEGRADATION_POOL)
        .expect("storm tick");
    // The first post-drain request pays the full classic fallback (pool
    // and cache both empty). Later requests in the phase ride the cache
    // the fallback itself re-warms — real behaviour, but the headline
    // degradation number is that first hit.
    let storm = phase_samples(&mut os, parent)[0];

    // Phase 2 — relief: the storm passes, the tick restores the pool.
    for &(w, _) in &workers {
        os.kernel.exit(w, 0).expect("worker exit");
        os.kernel.waitpid(os.init, Some(w)).expect("reap worker");
    }
    let recovery_autoscale_built = os
        .pool_autoscale(SERVICE_BIN, DEGRADATION_POOL)
        .expect("recovery tick");
    let recovered = phase_latency(&mut os, parent);
    // The measurements consumed parked children; one more tick restores
    // the target before the occupancy snapshot.
    os.pool_autoscale(SERVICE_BIN, DEGRADATION_POOL)
        .expect("final top-up");

    os.kernel.check_invariants().expect("invariants hold");
    DegradationOutcome {
        spawn_latency: [calm, storm, recovered],
        pool_parked: [pool_calm, pool_storm, pool_parked(&os)],
        storm_autoscale_built,
        recovery_autoscale_built,
        classic_reference: degraded_reference_cost(),
        peak_pressure: peak,
        reclaim_passes: os.kernel.reclaim_stats().passes,
        oom_kills: os.kernel.oom_kills.len(),
    }
}

fn pool_parked(os: &Os) -> usize {
    os.fastpath().expect("enabled").pool().total_parked()
}

fn cached_frames(os: &Os) -> u64 {
    os.fastpath().expect("enabled").cache().cached_frames()
}

/// Builds the E15 figure: per-path p50/p95/p99 service latency, the
/// sojourn tail, throughput against the offered rate, and the
/// degradation arm's three-phase series.
pub fn run() -> FigureData {
    let outcome = run_service(&ServiceConfig::default());
    let degraded = run_degradation();
    let us = |c: u64| c as f64 / CYCLES_PER_US as f64;

    let mut fig = FigureData::new(
        "fig_service",
        "open-loop service: creation-path tail latency, throughput, and pressure degradation",
        "percentile (latency series) / metric or phase index (others)",
        "latency us / kreq per s / count",
    );
    for st in &outcome.per_path {
        let mut s = Series::new(format!("{} us", st.path.label()));
        for p in [50.0, 95.0, 99.0] {
            s.push(p, us(st.hist.percentile(p)));
        }
        fig.series.push(s);
    }
    let mut soj = Series::new("sojourn (arrival-to-exit) us");
    for p in [50.0, 95.0, 99.0] {
        soj.push(p, us(outcome.sojourn.percentile(p)));
    }
    fig.series.push(soj);
    let mut thr = Series::new("throughput (0=offered kreq/s, 1=sustained kreq/s, 2=oom kills)");
    thr.push(0.0, outcome.config.offered_rate / 1_000.0);
    thr.push(1.0, outcome.sustained_rate / 1_000.0);
    thr.push(2.0, outcome.oom_kills as f64);
    fig.series.push(thr);
    let mut dspawn = Series::new("degradation spawn us (0=calm, 1=storm, 2=recovered)");
    for (x, &c) in degraded.spawn_latency.iter().enumerate() {
        dspawn.push(x as f64, us(c));
    }
    fig.series.push(dspawn);
    let mut dpool = Series::new("degradation parked children");
    for (x, &n) in degraded.pool_parked.iter().enumerate() {
        dpool.push(x as f64, n as f64);
    }
    fig.series.push(dpool);
    let mut dkills = Series::new("degradation oom kills");
    for x in 0..3 {
        dkills.push(x as f64, if x == 1 { degraded.oom_kills as f64 } else { 0.0 });
    }
    fig.series.push(dkills);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ServiceConfig {
        ServiceConfig {
            requests: 96,
            parent_heap_pages: 1_024,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn open_loop_orders_the_paths_and_kills_nobody() {
        let o = run_service(&ServiceConfig::default());
        assert_eq!(o.completed, o.config.requests as u64);
        assert_eq!(o.oom_kills, 0, "default rate must not OOM");
        for st in &o.per_path {
            assert!(st.served > 0, "{} never drawn", st.path.label());
            assert_eq!(st.served, st.hist.count);
        }
        let p99 = |p| o.stats(p).hist.p99();
        assert!(
            p99(CreationPath::SpawnFast) < p99(CreationPath::ForkOnDemand),
            "spawn fast path p99 {} must beat fork(OnDemand) p99 {}",
            p99(CreationPath::SpawnFast),
            p99(CreationPath::ForkOnDemand)
        );
        assert!(
            p99(CreationPath::ForkOnDemand) < p99(CreationPath::ForkCow),
            "fork(OnDemand) p99 {} must beat fork(Cow) p99 {}",
            p99(CreationPath::ForkOnDemand),
            p99(CreationPath::ForkCow)
        );
        assert!(o.autoscaled > 0, "the tick kept the pool alive");
        // Open loop below saturation: the server keeps up with the
        // offered rate (sojourn includes waits, but completions track
        // arrivals).
        assert!(
            o.sustained_rate > o.config.offered_rate * 0.8,
            "sustained {} vs offered {}",
            o.sustained_rate,
            o.config.offered_rate
        );
        assert!(o.busy_cycles <= o.makespan_cycles);
    }

    #[test]
    fn sojourn_dominates_service_latency() {
        let o = run_service(&quick_config());
        // Sojourn = service + queueing: its p99 can never undercut the
        // fastest path's p50.
        assert!(o.sojourn.p99() >= o.stats(CreationPath::SpawnFast).hist.p50());
        assert_eq!(o.sojourn.count, o.completed);
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        // The determinism contract the bench JSON relies on: two
        // identically seeded E15 figures serialize to the same bytes.
        let a = run().to_json();
        let b = run().to_json();
        assert_eq!(a, b, "same-seed fig_service JSON must be byte-identical");
    }

    #[test]
    fn different_seed_changes_arrivals_not_health() {
        let mut cfg = quick_config();
        cfg.seed = 7;
        let o = run_service(&cfg);
        assert_eq!(o.oom_kills, 0);
        assert_eq!(o.completed, cfg.requests as u64);
    }

    #[test]
    fn degradation_drains_falls_back_and_recovers() {
        let d = run_degradation();
        assert_eq!(d.oom_kills, 0, "graceful degradation never kills");
        assert_eq!(d.pool_parked[0], DEGRADATION_POOL, "calm pool full");
        assert_eq!(d.pool_parked[1], 0, "storm drained the pool");
        assert_eq!(d.pool_parked[2], DEGRADATION_POOL, "recovery refilled");
        assert_eq!(
            d.storm_autoscale_built, 0,
            "autoscale must refuse to fight reclaim"
        );
        assert!(d.recovery_autoscale_built > 0, "relief tick rebuilt");
        assert!(d.peak_pressure >= PressureLevel::High);
        assert!(d.reclaim_passes >= 1);
        let [calm, storm, recovered] = d.spawn_latency;
        assert!(calm < storm, "calm {calm} must beat degraded {storm}");
        assert!(recovered < storm, "recovered {recovered} must beat {storm}");
        // Degraded spawns ride the classic path: same cost class.
        let ratio = storm as f64 / d.classic_reference as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "degraded spawn {} vs classic {} (ratio {ratio:.3})",
            storm,
            d.classic_reference
        );
    }

    #[test]
    fn figure_has_all_series() {
        let fig = run();
        assert_eq!(fig.series.len(), 10);
        for path in CreationPath::ALL {
            assert!(
                fig.series(&format!("{} us", path.label())).is_some(),
                "missing series for {}",
                path.label()
            );
        }
        assert!(fig.series("degradation parked children").is_some());
        assert!(fig.render().contains("fig_service"));
    }
}
