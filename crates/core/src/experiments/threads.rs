//! E5: fork isn't thread-safe — deadlock incidence and auditor accuracy.
//!
//! Synthesises multithreaded parents whose worker threads hold locks with
//! a given probability, forks them, and has the child exercise every
//! lock. Counts actual post-fork deadlocks and compares against what the
//! fork-safety auditor predicted *before* the fork. The reproduction
//! requirement: the auditor has zero false negatives.

use crate::os::{Os, OsConfig};
use fpr_audit::audit_fork_safety;
use fpr_kernel::{sync, Errno};
use fpr_trace::TableData;
use fpr_rng::Rng;

/// Aggregated result for one (threads, hold probability) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadSafetyCell {
    /// Worker threads (besides main).
    pub threads: u32,
    /// Probability each worker held its lock at fork time.
    pub hold_prob: f64,
    /// Trials run.
    pub trials: u32,
    /// Trials in which the child deadlocked on ≥1 lock.
    pub deadlocks: u32,
    /// Trials the auditor flagged as critical before the fork.
    pub flagged: u32,
    /// Deadlocking trials the auditor missed (must be zero).
    pub false_negatives: u32,
}

/// Runs one cell of `trials` trials.
pub fn run_cell(threads: u32, hold_prob: f64, trials: u32, seed: u64) -> ThreadSafetyCell {
    let mut rng = Rng::seed_from_u64(seed);
    let mut deadlocks = 0;
    let mut flagged = 0;
    let mut false_negatives = 0;
    for _ in 0..trials {
        let mut os = Os::boot(OsConfig::default());
        let parent = os.kernel.allocate_process(os.init, "mt").expect("alloc");
        let main = os.kernel.process(parent).expect("proc").main_tid();
        // Each worker registers one lock and maybe holds it.
        let mut locks = Vec::new();
        for i in 0..threads {
            let name = match i % 3 {
                0 => sync::names::MALLOC_ARENA,
                1 => sync::names::STDIO,
                _ => sync::names::APP,
            };
            let lock = os.kernel.register_lock(parent, name).expect("lock");
            let tid = os.kernel.spawn_thread(parent).expect("thread");
            if rng.gen_bool(hold_prob) {
                os.kernel.lock_acquire(parent, tid, lock).expect("acquire");
            }
            locks.push(lock);
        }
        let report = audit_fork_safety(&os.kernel, parent, main).expect("audit");
        let predicted = !report.is_safe();
        if predicted {
            flagged += 1;
        }
        let child = os.fork(parent).expect("fork");
        let c_main = os.kernel.process(child).expect("child").main_tid();
        let mut deadlocked = false;
        for lock in &locks {
            match os.kernel.lock_acquire(child, c_main, *lock) {
                Err(Errno::Edeadlk) => deadlocked = true,
                Ok(()) => os
                    .kernel
                    .lock_release(child, c_main, *lock)
                    .expect("release"),
                Err(e) => panic!("unexpected lock error {e}"),
            }
        }
        if deadlocked {
            deadlocks += 1;
            if !predicted {
                false_negatives += 1;
            }
        }
    }
    ThreadSafetyCell {
        threads,
        hold_prob,
        trials,
        deadlocks,
        flagged,
        false_negatives,
    }
}

/// Runs the grid and formats the table.
pub fn run(thread_counts: &[u32], hold_probs: &[f64], trials: u32) -> TableData {
    let mut t = TableData::new(
        "tab_thread_safety",
        "post-fork deadlock incidence and auditor detection",
        &[
            "threads",
            "hold_prob",
            "trials",
            "deadlock_rate",
            "auditor_flag_rate",
            "false_negatives",
        ],
    );
    let mut seed = 9000;
    for &n in thread_counts {
        for &p in hold_probs {
            seed += 1;
            let c = run_cell(n, p, trials, seed);
            t.push_row(vec![
                c.threads.to_string(),
                format!("{:.2}", c.hold_prob),
                c.trials.to_string(),
                format!("{:.2}", c.deadlocks as f64 / c.trials as f64),
                format!("{:.2}", c.flagged as f64 / c.trials as f64),
                c.false_negatives.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_threads_no_deadlocks() {
        let c = run_cell(0, 1.0, 5, 1);
        assert_eq!(c.deadlocks, 0);
        assert_eq!(c.false_negatives, 0);
    }

    #[test]
    fn certain_hold_always_deadlocks_and_is_always_flagged() {
        let c = run_cell(4, 1.0, 10, 2);
        assert_eq!(c.deadlocks, 10);
        assert_eq!(c.flagged, 10);
        assert_eq!(c.false_negatives, 0);
    }

    #[test]
    fn deadlock_rate_grows_with_threads() {
        let few = run_cell(1, 0.3, 40, 3);
        let many = run_cell(16, 0.3, 40, 3);
        assert!(
            many.deadlocks > few.deadlocks,
            "{} vs {}",
            many.deadlocks,
            few.deadlocks
        );
    }

    #[test]
    fn auditor_never_misses() {
        for (n, p, s) in [(2u32, 0.5, 10u64), (8, 0.25, 11), (16, 0.75, 12)] {
            let c = run_cell(n, p, 20, s);
            assert_eq!(c.false_negatives, 0, "auditor missed at n={n} p={p}");
            assert!(c.flagged >= c.deadlocks, "flags must cover deadlocks");
        }
    }
}
