//! E6: fork doesn't compose with buffered I/O.
//!
//! A parent buffers some output, creates a child with each API, and both
//! exit (flushing at exit, as libc does). With fork and vfork the
//! buffered prefix appears twice on the console; with posix_spawn and the
//! cross-process builder it appears once. The duplicated byte count
//! equals the unflushed buffer size — deterministically.

use crate::os::{Os, OsConfig};
use fpr_api::{ProcessBuilder, SpawnAttrs};
use fpr_kernel::{BufMode, Fd, FdEntry, OpenFlags, Pid};
use fpr_trace::TableData;

/// The APIs compared in this experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StdioApi {
    /// fork + both exit.
    Fork,
    /// posix_spawn + both exit.
    PosixSpawn,
    /// cross-process builder + both exit.
    Xproc,
}

impl StdioApi {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StdioApi::Fork => "fork",
            StdioApi::PosixSpawn => "posix_spawn",
            StdioApi::Xproc => "xproc",
        }
    }
}

/// One duplication measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdioCell {
    /// API used.
    pub api: &'static str,
    /// Bytes sitting in the parent's buffer at creation time.
    pub buffered_bytes: usize,
    /// Bytes that reached the console in total.
    pub console_bytes: usize,
    /// Bytes emitted more than once.
    pub duplicated_bytes: usize,
}

fn parent_with_buffer(os: &mut Os, fill: usize) -> (Pid, usize) {
    let parent = os
        .kernel
        .allocate_process(os.init, "writer")
        .expect("alloc");
    // Give the parent a console stdout (allocate_process starts empty).
    let ofd = os
        .kernel
        .ofds
        .insert(fpr_kernel::FileObject::Tty, OpenFlags::WRONLY);
    os.kernel
        .process_mut(parent)
        .expect("proc")
        .fds
        .install_at(
            Fd(1),
            FdEntry {
                ofd,
                cloexec: false,
            },
            64,
        )
        .expect("stdout");
    let stream = os
        .kernel
        .stream_open(parent, Fd(1), BufMode::FullyBuffered)
        .expect("stream");
    let data = vec![b'x'; fill];
    os.kernel
        .stream_write(parent, stream, &data)
        .expect("write");
    (parent, stream)
}

/// Runs one cell: parent buffers `fill` bytes, creates a child via `api`,
/// both exit.
pub fn run_cell(api: StdioApi, fill: usize) -> StdioCell {
    let mut os = Os::boot(OsConfig::default());
    let (parent, _stream) = parent_with_buffer(&mut os, fill);
    let child = match api {
        StdioApi::Fork => os.fork(parent).expect("fork"),
        StdioApi::PosixSpawn => os
            .spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
            .expect("spawn"),
        StdioApi::Xproc => {
            os.spawn_builder(parent, ProcessBuilder::new("/bin/tool"))
                .expect("xproc")
                .pid
        }
    };
    os.kernel.exit(child, 0).expect("child exit");
    let _ = os.kernel.waitpid(parent, Some(child));
    os.kernel.exit(parent, 0).expect("parent exit");
    let console = os.kernel.console.len();
    StdioCell {
        api: api.name(),
        buffered_bytes: fill,
        console_bytes: console,
        duplicated_bytes: console.saturating_sub(fill),
    }
}

/// Runs the grid.
pub fn run(fills: &[usize]) -> TableData {
    let mut t = TableData::new(
        "tab_stdio_dup",
        "buffered output duplicated by process creation",
        &["api", "buffered", "console", "duplicated"],
    );
    for api in [StdioApi::Fork, StdioApi::PosixSpawn, StdioApi::Xproc] {
        for &fill in fills {
            let c = run_cell(api, fill);
            t.push_row(vec![
                c.api.to_string(),
                c.buffered_bytes.to_string(),
                c.console_bytes.to_string(),
                c.duplicated_bytes.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_duplicates_exactly_the_buffer() {
        for fill in [1usize, 64, 1000] {
            let c = run_cell(StdioApi::Fork, fill);
            assert_eq!(c.duplicated_bytes, fill, "fork duplicates all {fill} bytes");
            assert_eq!(c.console_bytes, 2 * fill);
        }
    }

    #[test]
    fn spawn_and_xproc_do_not_duplicate() {
        for api in [StdioApi::PosixSpawn, StdioApi::Xproc] {
            let c = run_cell(api, 512);
            assert_eq!(c.duplicated_bytes, 0, "{} duplicated output", c.api);
            assert_eq!(c.console_bytes, 512);
        }
    }

    #[test]
    fn empty_buffer_is_harmless_everywhere() {
        for api in [StdioApi::Fork, StdioApi::PosixSpawn, StdioApi::Xproc] {
            let c = run_cell(api, 0);
            assert_eq!(c.duplicated_bytes, 0);
            assert_eq!(c.console_bytes, 0);
        }
    }

    #[test]
    fn grid_has_all_cells() {
        let t = run(&[0, 64]);
        assert_eq!(t.rows.len(), 6);
    }
}
