//! Experiment drivers: one module per figure/table of the evaluation.
//!
//! Every driver returns a [`fpr_trace::FigureData`] or
//! [`fpr_trace::TableData`]; the `fpr-bench` binaries print and persist
//! them, and the in-crate tests pin each experiment's required *shape*
//! (who wins, by what factor, where crossovers fall).

pub mod aslr;
pub mod breakdown;
pub mod cow;
pub mod fig1;
pub mod forkbomb;
pub mod odf_storm;
pub mod overcommit;
pub mod pressure;
pub mod robustness;
pub mod scaling;
pub mod service;
pub mod smp;
pub mod smp_faults;
pub mod spawn_fastpath;
pub mod stdio;
pub mod threads;
pub mod vma_sweep;
