//! E4: fork forces memory overcommit.
//!
//! Forking a process that uses a large fraction of memory must either be
//! refused up front (strict accounting) or admitted on credit — in which
//! case the failure arrives later, as an OOM kill in the middle of
//! innocent writes. This experiment runs the same fork-then-touch
//! workload under the three Linux overcommit modes and tabulates who
//! fails, when, and who dies.

use crate::os::{Os, OsConfig};
use fpr_kernel::{Errno, MachineConfig, Pid};
use fpr_mem::{OvercommitPolicy, Prot, Share};
use fpr_trace::TableData;

/// Outcome of one overcommit cell.
#[derive(Debug, Clone, PartialEq)]
pub struct OvercommitOutcome {
    /// Human-readable policy name.
    pub policy: &'static str,
    /// Parent footprint as a fraction of physical memory.
    pub ratio: f64,
    /// What fork returned.
    pub fork_result: String,
    /// What happened when the child wrote every page.
    pub touch_result: String,
    /// PIDs the OOM killer claimed.
    pub oom_victims: Vec<Pid>,
}

fn policy_name(p: OvercommitPolicy) -> &'static str {
    match p {
        OvercommitPolicy::Never { .. } => "never(strict)",
        OvercommitPolicy::Heuristic => "heuristic",
        OvercommitPolicy::Always => "always",
    }
}

/// Runs one cell: a parent occupying `ratio` of memory forks, then the
/// child writes all its pages (with OOM-kill retry, as a real kernel
/// would resolve the fault).
pub fn run_cell(policy: OvercommitPolicy, ratio: f64) -> OvercommitOutcome {
    let frames: u64 = 8_192;
    let mut os = Os::boot(OsConfig {
        machine: MachineConfig {
            frames,
            overcommit: policy,
            ..MachineConfig::default()
        },
        ..Default::default()
    });
    let parent = os.kernel.allocate_process(os.init, "big").expect("alloc");
    let pages = ((frames as f64) * ratio) as u64;
    let base = match os.kernel.mmap_anon(parent, pages, Prot::RW, Share::Private) {
        Ok(b) => b,
        Err(e) => {
            return OvercommitOutcome {
                policy: policy_name(policy),
                ratio,
                fork_result: format!("mmap failed: {e}"),
                touch_result: "-".into(),
                oom_victims: vec![],
            }
        }
    };
    os.kernel
        .populate(parent, base, pages)
        .expect("populate fits physically");

    let child = match os.fork(parent) {
        Ok(c) => c,
        Err(e) => {
            return OvercommitOutcome {
                policy: policy_name(policy),
                ratio,
                fork_result: format!("{e}"),
                touch_result: "-".into(),
                oom_victims: vec![],
            }
        }
    };

    // The child writes every inherited page; ENOMEM triggers the OOM
    // killer and the write retries (unless the writer itself was killed).
    let mut touch_result = "ok".to_string();
    'touch: for i in 0..pages {
        loop {
            match os.kernel.write_mem(child, base.add(i), i) {
                Ok(_) => break,
                Err(Errno::Enomem) => match os.kernel.oom_kill() {
                    Some(victim) if victim == child => {
                        touch_result = format!("child OOM-killed at page {i}");
                        break 'touch;
                    }
                    Some(_) => continue,
                    None => {
                        touch_result = format!("unresolvable OOM at page {i}");
                        break 'touch;
                    }
                },
                Err(Errno::Esrch) => {
                    touch_result = format!("child gone at page {i}");
                    break 'touch;
                }
                Err(e) => {
                    touch_result = format!("error {e} at page {i}");
                    break 'touch;
                }
            }
        }
    }
    OvercommitOutcome {
        policy: policy_name(policy),
        ratio,
        fork_result: "ok".into(),
        touch_result,
        oom_victims: os.kernel.oom_kills.clone(),
    }
}

/// Runs the policy × ratio grid.
pub fn run(ratios: &[f64]) -> TableData {
    let mut t = TableData::new(
        "tab_overcommit",
        "fork-then-touch under overcommit policies",
        &["policy", "ratio", "fork", "child touch", "oom kills"],
    );
    for policy in [
        OvercommitPolicy::Never { ratio: 0.95 },
        OvercommitPolicy::Heuristic,
        OvercommitPolicy::Always,
    ] {
        for &r in ratios {
            let o = run_cell(policy, r);
            t.push_row(vec![
                o.policy.to_string(),
                format!("{:.2}", o.ratio),
                o.fork_result,
                o.touch_result,
                o.oom_victims.len().to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_fails_up_front_no_oom() {
        let o = run_cell(OvercommitPolicy::Never { ratio: 0.95 }, 0.6);
        assert_eq!(
            o.fork_result, "ENOMEM",
            "strict accounting refuses the fork"
        );
        assert!(o.oom_victims.is_empty());
    }

    #[test]
    fn strict_admits_small_forks() {
        let o = run_cell(OvercommitPolicy::Never { ratio: 0.95 }, 0.3);
        assert_eq!(o.fork_result, "ok");
        assert_eq!(o.touch_result, "ok");
        assert!(o.oom_victims.is_empty());
    }

    #[test]
    fn always_admits_then_oom_kills() {
        let o = run_cell(OvercommitPolicy::Always, 0.6);
        assert_eq!(o.fork_result, "ok", "overcommit admits the fork");
        assert!(
            !o.oom_victims.is_empty(),
            "the bill arrives at touch time: {:?}",
            o
        );
        assert!(o.touch_result.contains("OOM") || o.touch_result == "ok");
    }

    #[test]
    fn heuristic_refuses_oversize_single_charge() {
        let o = run_cell(OvercommitPolicy::Heuristic, 0.6);
        // The child's charge (60%) exceeds free memory (40%): refused.
        assert_eq!(o.fork_result, "ENOMEM");
        let small = run_cell(OvercommitPolicy::Heuristic, 0.3);
        assert_eq!(small.fork_result, "ok");
    }

    #[test]
    fn grid_renders() {
        let t = run(&[0.3, 0.6]);
        assert_eq!(t.rows.len(), 6);
        assert!(t.render().contains("heuristic"));
    }
}
