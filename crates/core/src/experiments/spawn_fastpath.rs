//! E11: the spawn fast path closes the gap to on-demand fork.
//!
//! The baseline benchmark (E1/E2) leaves `posix_spawn` at ~9.5k cycles —
//! behind `fork(OnDemand)` at ~7.6k — because every spawn rebuilds the
//! child image from scratch: six VMA inserts, three startup faults, two
//! file reads. This experiment measures the two fast-path layers that
//! win the gap back without giving up spawn's fresh-ASLR property:
//!
//! * **spawn(cache)** — the exec image cache serves the file-backed
//!   startup pages copy-on-write from pinned frames: no faults, no file
//!   reads on a hit.
//! * **spawn(cache+pool)** — a warm-pool checkout: the child was
//!   pre-built off the hot path; the spawn pays one syscall plus the
//!   ASLR re-randomising segment slides.
//!
//! Both must stay flat in the parent's footprint (they do no O(parent)
//! work), and the pooled path must beat `fork(OnDemand)` everywhere —
//! including the small-parent end where fork used to win.

use crate::experiments::fig1::machine_for;
use crate::os::{Os, OsConfig};
use fpr_api::SpawnAttrs;
use fpr_mem::{ForkMode, CYCLES_PER_US};
use fpr_trace::{FigureData, ProcessShape, Series};

/// Which spawn configuration a cell measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Classic `posix_spawn`, fast path disabled.
    Plain,
    /// Fast path enabled, image cache warmed, pool empty.
    Cache,
    /// Fast path enabled, cache warmed and one child parked.
    CachePool,
}

/// Builds a world with a `footprint`-page parent, prepares the fast-path
/// state for `mode`, and returns the cycles one spawn of `/bin/tool`
/// costs from that parent.
pub fn measure_spawn(mode: Mode, footprint: u64) -> u64 {
    measure_spawn_seeded(mode, footprint, OsConfig::default().seed)
}

/// [`measure_spawn`] with an explicit ASLR seed (the bench snapshot
/// takes medians over a seed set).
pub fn measure_spawn_seeded(mode: Mode, footprint: u64, seed: u64) -> u64 {
    let mut os = Os::boot(OsConfig {
        machine: machine_for(footprint),
        seed,
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape::with_heap(footprint))
        .expect("parent fits");
    match mode {
        Mode::Plain => {}
        Mode::Cache => {
            os.enable_spawn_fastpath().expect("enable");
            // Warm the cache with a throwaway spawn (the donor), then
            // retire it so only the measured child exists.
            let donor = os
                .spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
                .expect("warm-up spawn");
            os.kernel.exit(donor, 0).expect("exit");
            os.kernel.waitpid(parent, Some(donor)).expect("reap");
        }
        Mode::CachePool => {
            os.enable_spawn_fastpath().expect("enable");
            os.pool_prefill("/bin/tool", 1).expect("prefill");
        }
    }
    let (_, cycles) = os.measure(|os| {
        os.spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
            .expect("spawn")
    });
    cycles
}

/// Cycles an on-demand fork of the same parent costs (the competitor).
pub fn measure_odf(footprint: u64) -> u64 {
    measure_odf_seeded(footprint, OsConfig::default().seed)
}

/// [`measure_odf`] with an explicit ASLR seed.
pub fn measure_odf_seeded(footprint: u64, seed: u64) -> u64 {
    let mut os = Os::boot(OsConfig {
        machine: machine_for(footprint),
        seed,
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape::with_heap(footprint))
        .expect("parent fits");
    let (_, cycles) = os.measure(|os| os.fork_stats(parent, ForkMode::OnDemand).expect("fork"));
    cycles
}

/// Runs the E11 sweep over parent footprints (pages of populated heap).
pub fn run(footprints: &[u64]) -> FigureData {
    let mut fig = FigureData::new(
        "fig_spawn_fastpath",
        "spawn fast path vs fork(OnDemand) across parent footprints",
        "parent MiB",
        "latency us",
    );
    let mut plain_s = Series::new("posix_spawn");
    let mut cache_s = Series::new("spawn(cache)");
    let mut pool_s = Series::new("spawn(cache+pool)");
    let mut odf_s = Series::new("fork(OnDemand)");
    for &fp in footprints {
        let mib = fp as f64 * 4096.0 / (1024.0 * 1024.0);
        let us = |c: u64| c as f64 / CYCLES_PER_US as f64;
        plain_s.push(mib, us(measure_spawn(Mode::Plain, fp)));
        cache_s.push(mib, us(measure_spawn(Mode::Cache, fp)));
        pool_s.push(mib, us(measure_spawn(Mode::CachePool, fp)));
        odf_s.push(mib, us(measure_odf(fp)));
    }
    fig.series = vec![plain_s, cache_s, pool_s, odf_s];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_api::{posix_spawn, FileAction};
    use fpr_kernel::Fd;

    /// 1 MiB → 4 GiB in pages.
    const SWEEP: [u64; 4] = [256, 4096, 65_536, 1_048_576];

    #[test]
    fn pooled_spawn_flat_and_at_or_below_on_demand_fork_everywhere() {
        let fig = run(&SWEEP);
        let pool = fig.series("spawn(cache+pool)").unwrap();
        let cache = fig.series("spawn(cache)").unwrap();
        let plain = fig.series("posix_spawn").unwrap();
        let odf = fig.series("fork(OnDemand)").unwrap();

        // Both fast-path variants do no O(parent) work: flat within 5%.
        for s in [pool, cache] {
            let g = s.growth_factor().unwrap();
            assert!((0.95..1.05).contains(&g), "{} not flat: {g}", s.label);
        }
        // The pooled spawn wins against on-demand fork at *every*
        // footprint — including the small end where fork used to win —
        // and each layer improves on the one below it.
        for (i, &pages) in SWEEP.iter().enumerate() {
            let (p, c, pl, o) = (
                pool.points[i].y,
                cache.points[i].y,
                plain.points[i].y,
                odf.points[i].y,
            );
            assert!(p <= o, "pool {p} > odf {o} at {pages} pages");
            assert!(p < c, "pool {p} must beat cache-only {c}");
            assert!(c < pl, "cache {c} must beat plain spawn {pl}");
        }
    }

    #[test]
    fn fastpath_miss_costs_exactly_the_classic_spawn() {
        // Fast path enabled but cold (no parked child, no cached image):
        // the spawn must cost precisely what the classic path does — the
        // pool table is consulted in userspace and a cache miss donates
        // for free.
        let plain = measure_spawn(Mode::Plain, 4096);
        let cold = {
            let mut os = Os::boot(OsConfig {
                machine: machine_for(4096),
                ..Default::default()
            });
            let parent = os.make_parent(ProcessShape::with_heap(4096)).unwrap();
            os.enable_spawn_fastpath().unwrap();
            let (_, cycles) = os.measure(|os| {
                os.spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
                    .expect("spawn")
            });
            cycles
        };
        assert_eq!(plain, cold, "the pool-miss path is unchanged");
    }

    #[test]
    fn disabled_fastpath_is_byte_identical_to_the_classic_os() {
        // Enabling and then disabling the fast path must leave no trace:
        // an identical spawn/fork workload produces identical cycle
        // totals and identical layouts as a never-enabled run.
        let drive = |os: &mut Os| {
            let init = os.init;
            let a = os
                .spawn(init, "/bin/tool", &[], &SpawnAttrs::default())
                .unwrap();
            let b = os.fork(a).unwrap();
            let c = os
                .spawn(b, "/bin/sh", &[], &SpawnAttrs::default())
                .unwrap();
            (os.kernel.cycles.total(), os.kernel.process(c).unwrap().layout)
        };
        let mut classic = Os::boot(OsConfig {
            seed: 99,
            ..Default::default()
        });
        let mut toggled = Os::boot(OsConfig {
            seed: 99,
            ..Default::default()
        });
        toggled.enable_spawn_fastpath().unwrap();
        toggled.disable_spawn_fastpath().unwrap();
        assert!(!toggled.fastpath_enabled());
        assert_eq!(drive(&mut classic), drive(&mut toggled));
    }

    #[test]
    fn failed_fast_spawn_reports_cleanly_like_the_classic_one() {
        // Same contract posix_spawn has: a bad file action fails in the
        // parent with no child left behind — pool hit or miss alike.
        let mut os = Os::boot_default();
        let init = os.init;
        os.enable_spawn_fastpath().unwrap();
        os.pool_prefill("/bin/tool", 1).unwrap();
        let procs = os.kernel.process_count();
        let actions = vec![FileAction::Close { fd: Fd(77) }];
        let r = os.spawn(init, "/bin/tool", &actions, &SpawnAttrs::default());
        assert_eq!(r, Err(fpr_kernel::Errno::Ebadf));
        assert_eq!(os.kernel.process_count(), procs, "child re-parked, not leaked");
        assert_eq!(os.fastpath().unwrap().pool().available("/bin/tool"), 1);
        os.kernel.check_invariants().unwrap();
        let _ = posix_spawn; // keep the classic symbol linked for parity
    }

    #[test]
    fn rewrite_between_spawns_never_serves_stale_segments() {
        use fpr_mem::{vma::file_stamp, Vpn};
        let mut os = Os::boot_default();
        let init = os.init;
        os.enable_spawn_fastpath().unwrap();
        os.pool_prefill("/bin/tool", 2).unwrap();
        let before = os
            .spawn(init, "/bin/tool", &[], &SpawnAttrs::default())
            .unwrap();
        let gen = os.rewrite_binary("/bin/tool").unwrap();
        assert!(gen > 0);
        let after = os
            .spawn(init, "/bin/tool", &[], &SpawnAttrs::default())
            .unwrap();
        let f = os.fastpath().unwrap();
        assert!(f.pool().discards() > 0, "stale parked child discarded");
        let base_id = os.images.lookup("/bin/tool").unwrap().file_id;
        let img = os.images.lookup("/bin/tool").unwrap().clone();
        let l_old = os.kernel.process(before).unwrap().layout;
        let l_new = os.kernel.process(after).unwrap().layout;
        assert_eq!(
            os.kernel
                .read_mem(before, Vpn(l_old.text_base + img.entry_page)),
            Ok(file_stamp(base_id, img.entry_page)),
            "pre-rewrite child keeps the old bytes"
        );
        assert_eq!(
            os.kernel
                .read_mem(after, Vpn(l_new.text_base + img.entry_page)),
            Ok(file_stamp(base_id + (gen << 32), img.entry_page)),
            "post-rewrite child reads the new bytes"
        );
    }

    /// Seed-driven property test (the workspace builds without proptest):
    /// random interleavings of binary rewrites and spawns must never
    /// serve a child whose text content predates the latest rewrite.
    #[test]
    fn random_rewrite_spawn_interleavings_stay_fresh() {
        use fpr_mem::{vma::file_stamp, Vpn};
        use fpr_rng::Rng;
        for case in 0..24u64 {
            let mut rng = Rng::seed_from_u64(0xE11 + case);
            let mut os = Os::boot_default();
            let init = os.init;
            os.enable_spawn_fastpath().unwrap();
            let mut generation = 0u64;
            for step in 0..20 {
                match rng.gen_below(4) {
                    0 => {
                        generation = os.rewrite_binary("/bin/tool").unwrap();
                    }
                    1 => {
                        let n = rng.gen_range(1, 3) as usize;
                        os.pool_prefill("/bin/tool", n).unwrap();
                    }
                    _ => {
                        let c = os
                            .spawn(init, "/bin/tool", &[], &SpawnAttrs::default())
                            .unwrap();
                        let p = os.kernel.process(c).unwrap();
                        let (layout, entry) = (p.layout, {
                            let img = os.images.lookup("/bin/tool").unwrap();
                            (img.file_id, img.entry_page)
                        });
                        assert_eq!(
                            os.kernel.read_mem(c, Vpn(layout.text_base + entry.1)),
                            Ok(file_stamp(entry.0 + (generation << 32), entry.1)),
                            "case {case} step {step}: spawned child must read \
                             generation-{generation} bytes"
                        );
                    }
                }
            }
            os.kernel.check_invariants().unwrap();
        }
    }
}
