//! E8a: zygote-style forking defeats ASLR.
//!
//! An app-server "zygote" execs once and forks a child per request, so
//! every child shares one layout draw; independently spawned workers each
//! draw fresh. The table reports pairwise shared layout bits and the
//! residual entropy an attacker must still guess after leaking one
//! sibling's layout.

use crate::os::{Os, OsConfig};
use fpr_api::SpawnAttrs;
use fpr_audit::{zygote_entropy, ZygoteReport};
use fpr_kernel::Pid;
use fpr_trace::TableData;

/// Spawning strategy under audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One exec, then fork per child (Android zygote).
    Zygote,
    /// posix_spawn per child.
    SpawnPer,
    /// Warm-pool checkout per child (the E11 fast path): pre-built like a
    /// zygote's children, but each checkout slides the image to a fresh
    /// layout draw — the zygote's speed without its shared layout.
    WarmPool,
}

/// Creates `n` children with the strategy and measures layout sharing.
pub fn run_cell(strategy: Strategy, n: usize) -> ZygoteReport {
    let mut os = Os::boot(OsConfig::default());
    let init = os.init;
    let children: Vec<Pid> = match strategy {
        Strategy::Zygote => {
            let zygote = os
                .spawn(init, "/bin/server", &[], &SpawnAttrs::default())
                .expect("zygote");
            (0..n).map(|_| os.fork(zygote).expect("fork")).collect()
        }
        Strategy::SpawnPer => (0..n)
            .map(|_| {
                os.spawn(init, "/bin/server", &[], &SpawnAttrs::default())
                    .expect("spawn")
            })
            .collect(),
        Strategy::WarmPool => {
            os.enable_spawn_fastpath().expect("enable");
            os.pool_prefill("/bin/server", n).expect("prefill");
            let kids = (0..n)
                .map(|_| {
                    os.spawn(init, "/bin/server", &[], &SpawnAttrs::default())
                        .expect("checkout")
                })
                .collect();
            let f = os.fastpath().expect("enabled");
            assert_eq!(f.pool().checkouts(), n as u64, "all served from the pool");
            kids
        }
    };
    zygote_entropy(&os.kernel, &children).expect("audit")
}

/// Runs both strategies and formats the table.
pub fn run(n: usize) -> TableData {
    let mut t = TableData::new(
        "tab_aslr",
        "ASLR layout sharing among sibling workers",
        &[
            "strategy",
            "children",
            "identical_pairs",
            "mean_shared_bits",
            "residual_entropy_bits",
        ],
    );
    for (s, name) in [
        (Strategy::Zygote, "zygote(fork)"),
        (Strategy::SpawnPer, "spawn-per-child"),
        (Strategy::WarmPool, "spawn(warm-pool)"),
    ] {
        let r = run_cell(s, n);
        t.push_row(vec![
            name.to_string(),
            r.children.to_string(),
            r.identical_pairs.to_string(),
            format!("{:.1}", r.mean_shared_bits),
            format!("{:.1}", r.effective_entropy_bits),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_audit::MAX_LAYOUT_BITS;

    #[test]
    fn zygote_children_fully_correlated() {
        let r = run_cell(Strategy::Zygote, 8);
        assert_eq!(r.identical_pairs, 8 * 7 / 2);
        assert_eq!(r.effective_entropy_bits, 0.0);
        assert_eq!(r.mean_shared_bits, MAX_LAYOUT_BITS as f64);
    }

    #[test]
    fn spawned_children_nearly_independent() {
        let r = run_cell(Strategy::SpawnPer, 8);
        assert_eq!(r.identical_pairs, 0);
        assert!(
            r.effective_entropy_bits > 50.0,
            "residual entropy {}",
            r.effective_entropy_bits
        );
    }

    #[test]
    fn warm_pool_children_share_no_entropy() {
        // The E11 regression: pool checkouts re-randomise, so pooled
        // siblings look like independent spawns — no identical pair,
        // near-zero shared bits, near-full residual entropy. This is the
        // property the zygote row fails.
        let r = run_cell(Strategy::WarmPool, 8);
        assert_eq!(r.identical_pairs, 0);
        assert!(
            r.effective_entropy_bits > 50.0,
            "residual entropy {}",
            r.effective_entropy_bits
        );
        assert!(
            r.mean_shared_bits < MAX_LAYOUT_BITS as f64 * 0.1,
            "pooled siblings share ~0 layout bits, got {}",
            r.mean_shared_bits
        );
    }

    #[test]
    fn table_contrasts_the_strategies() {
        let t = run(6);
        assert_eq!(t.rows.len(), 3);
        let zygote_pairs: u32 = t.rows[0][2].parse().unwrap();
        let spawn_pairs: u32 = t.rows[1][2].parse().unwrap();
        let pool_pairs: u32 = t.rows[2][2].parse().unwrap();
        assert!(zygote_pairs > 0);
        assert_eq!(spawn_pairs, 0);
        assert_eq!(pool_pairs, 0);
    }
}
