//! E9: partial-failure cleanliness and retry under memory pressure.
//!
//! The paper's complaint is not only that fork is slow — it is that fork
//! *fails messily*: every subsystem must know how to un-duplicate itself,
//! and those paths never run in testing. This experiment runs them, all
//! of them, for fork, `posix_spawn`, and the cross-process builder:
//!
//! 1. **Cleanliness sweep** — count the K instrumented fault-injection
//!    points each API crosses creating a child from a standard parent,
//!    then replay K times failing at each point. Record how many produced
//!    a clean error with zero leaked resources
//!    ([`fpr_kernel::Kernel::leak_check`] +
//!    [`fpr_kernel::Kernel::check_invariants`] both green).
//! 2. **Retry under pressure** — under strict overcommit, a large parent
//!    cannot fork (the up-front O(parent) commit charge exceeds the
//!    headroom) but can spawn (O(image) charge). Bounded retry with
//!    backoff rescues fork only after another process releases memory;
//!    spawn and xproc succeed on the first attempt throughout.
//!
//! Because the creation APIs are transactional, every row of the sweep
//! must read `K/K clean`; the table is the evidence.

use crate::os::{Os, OsConfig};
use fpr_api::{retry_with_backoff, ProcessBuilder, RetryPolicy, SpawnAttrs};
use fpr_faults::{count_crossings, with_plan, FaultPlan, FaultSite};
use fpr_kernel::MachineConfig;
use fpr_mem::{OvercommitPolicy, Prot, Share};
use fpr_trace::{ProcessShape, TableData};
use std::collections::BTreeMap;

type ApiOp<'a> = &'a dyn Fn(&mut Os, fpr_kernel::Pid) -> Result<(), fpr_kernel::Errno>;

/// The three creation APIs E9 compares, as uniform closures. Spawn and
/// the builder carry representative file actions and memory ops so the
/// sweep reaches their per-step fault sites, not just the shared ones.
fn apis() -> [(&'static str, ApiOp<'static>); 3] {
    use fpr_api::{FdSource, FileAction, MemOp};
    use fpr_kernel::{OpenFlags, Fd, STDOUT};
    [
        ("fork", &|os, p| os.fork(p).map(|_| ())),
        ("posix_spawn", &|os, p| {
            let actions = vec![
                FileAction::Open {
                    fd: STDOUT,
                    path: "/e9-out.txt".into(),
                    flags: OpenFlags::WRONLY,
                    create: true,
                },
                FileAction::Close {
                    fd: fpr_kernel::STDIN,
                },
            ];
            os.spawn(p, "/bin/tool", &actions, &SpawnAttrs::default())
                .map(|_| ())
        }),
        ("xproc", &|os, p| {
            let builder = ProcessBuilder::new("/bin/tool")
                .fd(STDOUT, FdSource::Inherit(STDOUT))
                .fd(
                    Fd(5),
                    FdSource::Open {
                        path: "/e9-scratch".into(),
                        flags: OpenFlags::RDWR,
                        create: true,
                    },
                )
                .mem(MemOp::MapAnon {
                    tag: 1,
                    pages: 4,
                    prot: fpr_mem::Prot::RW,
                })
                .mem(MemOp::Write {
                    tag: 1,
                    offset: 0,
                    value: 9,
                });
            os.spawn_builder(p, builder).map(|_| ())
        }),
    ]
}

/// Outcome of sweeping every fail point of one API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome {
    /// API label.
    pub api: &'static str,
    /// Instrumented crossings the fault-free operation makes.
    pub injection_points: usize,
    /// Injections that surfaced as a clean `Err` in the parent.
    pub clean_errors: usize,
    /// Injections after which `leak_check` + `check_invariants` passed.
    pub clean_state: usize,
    /// Injections that leaked or corrupted state (must be zero).
    pub dirty: usize,
}

fn standard_os() -> (Os, fpr_kernel::Pid) {
    let mut os = Os::boot(OsConfig {
        seed: 9,
        ..OsConfig::default()
    });
    let parent = os.make_parent(ProcessShape::shell()).expect("parent");
    (os, parent)
}

/// One fail point's verdict: which site it hit, whether the API failed
/// (it must — the fault is injected), whether the kernel stayed intact.
struct PointResult {
    site: FaultSite,
    failed: bool,
    intact: bool,
}

/// Replays one API once per fail point it crosses, from a fresh world
/// each time, recording per-point cleanliness.
fn sweep_points(op: ApiOp<'_>) -> Vec<PointResult> {
    let sites: Vec<FaultSite> = {
        let (mut os, parent) = standard_os();
        let trace = count_crossings(|| op(&mut os, parent).expect("fault-free run"));
        trace.crossings.iter().map(|c| c.site).collect()
    };
    sites
        .into_iter()
        .enumerate()
        .map(|(nth, site)| {
            let (mut os, parent) = standard_os();
            let base = os.kernel.baseline();
            let plan = FaultPlan::passive().fail_nth_crossing(nth as u64);
            let (result, _) = with_plan(plan, || op(&mut os, parent));
            let intact =
                os.kernel.leak_check(&base).is_ok() && os.kernel.check_invariants().is_ok();
            PointResult {
                site,
                failed: result.is_err(),
                intact,
            }
        })
        .collect()
}

/// Sweeps one creation API across every fail point it crosses.
pub fn sweep_api(api: &'static str, op: ApiOp<'_>) -> SweepOutcome {
    let points = sweep_points(op);
    SweepOutcome {
        api,
        injection_points: points.len(),
        clean_errors: points.iter().filter(|p| p.failed).count(),
        clean_state: points.iter().filter(|p| p.failed && p.intact).count(),
        dirty: points.iter().filter(|p| !(p.failed && p.intact)).count(),
    }
}

/// Runs the cleanliness sweep for fork, spawn, and xproc.
pub fn sweep_all() -> Vec<SweepOutcome> {
    apis().into_iter().map(|(api, op)| sweep_api(api, op)).collect()
}

/// The API × fail-site matrix: per (API, site), how many of that API's
/// crossings hit the site and how many injections failed clean. Every
/// `clean` cell must equal its `crossings` cell — a `DIRTY` row is an
/// error path whose cleanup is broken.
pub fn fault_matrix() -> TableData {
    let mut t = TableData::new(
        "tab_faultmatrix",
        "API × fail-site sweep (clean = injected faults with Err + intact kernel)",
        &["api", "site", "crossings", "clean", "status"],
    );
    for (api, op) in apis() {
        let mut per: BTreeMap<FaultSite, (u64, u64)> = BTreeMap::new();
        for p in sweep_points(op) {
            let e = per.entry(p.site).or_insert((0, 0));
            e.0 += 1;
            if p.failed && p.intact {
                e.1 += 1;
            }
        }
        for (site, (crossings, clean)) in per {
            t.push_row(vec![
                api.to_string(),
                site.name().to_string(),
                crossings.to_string(),
                format!("{clean}/{crossings}"),
                if clean == crossings { "clean" } else { "DIRTY" }.to_string(),
            ]);
        }
    }
    t
}

/// Outcome of one API's creation attempt under memory pressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PressureOutcome {
    /// API label.
    pub api: &'static str,
    /// Whether creation ultimately succeeded.
    pub succeeded: bool,
    /// Attempts the bounded retry made.
    pub attempts: u32,
    /// Backoff cycles burnt waiting.
    pub backoff_cycles: u64,
}

/// Creates a child with each API from a large parent under strict
/// overcommit, with a hog releasing its memory before attempt
/// `relief_at`. Fork needs the relief; spawn and xproc do not.
pub fn under_pressure(relief_at: u32) -> Vec<PressureOutcome> {
    let mut out = Vec::new();
    for api in ["fork", "posix_spawn", "xproc"] {
        let mut os = Os::boot(OsConfig {
            machine: MachineConfig {
                frames: 4096,
                overcommit: OvercommitPolicy::Never { ratio: 0.9 },
                ..MachineConfig::default()
            },
            seed: 9,
            ..OsConfig::default()
        });
        // A parent holding ~45% of commit: its fork needs another ~45%.
        let parent = os
            .make_parent(ProcessShape {
                heap_pages: 1_650,
                vma_count: 4,
                extra_fds: 2,
                extra_threads: 0,
            })
            .expect("parent");
        // A hog eats the rest of the headroom, minus a sliver that covers
        // spawn-sized (O(image)) charges but not fork-sized ones.
        let limit = os.kernel.commit.limit().expect("strict mode");
        let headroom = limit - os.kernel.commit.committed();
        let hog_pages = headroom.saturating_sub(96);
        let hog = os
            .kernel
            .mmap_anon(os.init, hog_pages, Prot::RW, Share::Private)
            .expect("hog fits");
        let mut attempt = 0;
        let init = os.init;
        let (result, stats) = retry_with_backoff(
            &mut os.kernel,
            RetryPolicy::default(),
            |k| {
                attempt += 1;
                if attempt == relief_at {
                    k.munmap(init, hog, hog_pages).expect("hog unmaps");
                }
                match api {
                    "fork" => fpr_api::fork(k, parent).map(|_| ()),
                    "posix_spawn" => fpr_api::posix_spawn(
                        k,
                        parent,
                        &os.images,
                        "/bin/tool",
                        &[],
                        &SpawnAttrs::default(),
                        os.aslr,
                        11,
                    )
                    .map(|_| ()),
                    _ => ProcessBuilder::new("/bin/tool")
                        .aslr(os.aslr, 11)
                        .spawn(k, parent, &os.images)
                        .map(|_| ()),
                }
            },
        );
        out.push(PressureOutcome {
            api,
            succeeded: result.is_ok(),
            attempts: stats.attempts,
            backoff_cycles: stats.backoff_cycles,
        });
    }
    out
}

/// Runs E9 and renders both parts as one table.
pub fn run() -> TableData {
    let mut t = TableData::new(
        "tab_e9_robustness",
        "E9: partial-failure cleanliness and retry under memory pressure",
        &[
            "api",
            "injection_points",
            "clean_err",
            "clean_state",
            "dirty",
            "pressure_attempts",
            "pressure_backoff_cycles",
            "pressure_outcome",
        ],
    );
    let sweeps = sweep_all();
    let pressure = under_pressure(3);
    for (s, p) in sweeps.iter().zip(pressure.iter()) {
        assert_eq!(s.api, p.api, "row pairing");
        t.push_row(vec![
            s.api.to_string(),
            s.injection_points.to_string(),
            format!("{}/{}", s.clean_errors, s.injection_points),
            format!("{}/{}", s.clean_state, s.injection_points),
            s.dirty.to_string(),
            p.attempts.to_string(),
            p.backoff_cycles.to_string(),
            if p.succeeded { "ok" } else { "failed" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fail_point_is_clean_for_all_apis() {
        for s in sweep_all() {
            assert!(
                s.injection_points > 0,
                "{}: no instrumented crossings",
                s.api
            );
            assert_eq!(
                s.dirty, 0,
                "{}: {} of {} fail points leaked or corrupted state",
                s.api, s.dirty, s.injection_points
            );
            assert_eq!(s.clean_errors, s.injection_points);
            assert_eq!(s.clean_state, s.injection_points);
        }
    }

    #[test]
    fn fork_needs_the_retry_spawn_does_not() {
        let rows = under_pressure(3);
        let fork = rows.iter().find(|r| r.api == "fork").unwrap();
        let spawn = rows.iter().find(|r| r.api == "posix_spawn").unwrap();
        let xproc = rows.iter().find(|r| r.api == "xproc").unwrap();
        assert!(fork.succeeded, "fork succeeds once relief arrives");
        assert_eq!(fork.attempts, 3, "fork retried until the hog released");
        assert!(fork.backoff_cycles > 0);
        for r in [spawn, xproc] {
            assert!(r.succeeded);
            assert_eq!(
                r.attempts, 1,
                "{}: O(image) charge fits without relief",
                r.api
            );
            assert_eq!(r.backoff_cycles, 0);
        }
    }

    #[test]
    fn fault_matrix_is_all_clean() {
        let t = fault_matrix();
        assert!(t.rows.len() >= 3, "at least one site row per API");
        for row in &t.rows {
            assert_eq!(row[4], "clean", "dirty matrix cell: {row:?}");
        }
        // fork must exercise the memory sites; spawn the file-action site.
        assert!(t
            .rows
            .iter()
            .any(|r| r[0] == "fork" && r[1] == "pt_node_alloc"));
        assert!(t
            .rows
            .iter()
            .any(|r| r[0] == "posix_spawn" && r[1] == "spawn_file_action"));
        assert!(t.rows.iter().any(|r| r[0] == "xproc" && r[1] == "xproc_step"));
    }

    #[test]
    fn table_has_one_row_per_api() {
        let t = run();
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row[4], "0", "dirty column must be zero: {row:?}");
            assert_eq!(row[7], "ok");
        }
    }
}
