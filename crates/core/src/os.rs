//! The `Os` facade: one object bundling the kernel, the image registry
//! and the ASLR source, with convenience wrappers over the five creation
//! APIs.
//!
//! Everything the examples and experiments need goes through here, so a
//! downstream user writes `os.fork(pid)` / `os.spawn(pid, "/bin/tool")`
//! instead of threading four subsystems by hand.

use fpr_api::{FileAction, ProcessBuilder, SpawnAttrs, WarmPool};
use fpr_exec::{AslrConfig, Image, ImageCache, ImageRegistry};
use fpr_kernel::{Errno, KResult, Kernel, MachineConfig, Pid, ShrinkerHandle};
use fpr_mem::{ForkMode, Prot, Share, Vpn};
use fpr_trace::ProcessShape;
use fpr_rng::Rng;
use std::sync::{Arc, Mutex, MutexGuard};

/// Configuration for [`Os::boot`].
#[derive(Debug, Clone)]
pub struct OsConfig {
    /// Machine parameters (frames, CPUs, overcommit, cost model).
    pub machine: MachineConfig,
    /// ASLR policy for exec/spawn layouts.
    pub aslr: AslrConfig,
    /// Seed for all randomness (layouts, workloads) — same seed, same run.
    pub seed: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            machine: MachineConfig::default(),
            aslr: AslrConfig::default(),
            seed: 42,
        }
    }
}

/// The spawn fast path's moving parts, owned by [`Os`] while enabled.
///
/// Cache and pool are shared (`Arc<Mutex<…>>`, matching the kernel's
/// `Send` registry) because the kernel holds weak handles to both as
/// memory-pressure shrinkers: under pressure a reclaim pass drains warm
/// children and evicts cold image entries instead of OOM-killing.
/// Dropping this struct (fast-path disable) unregisters both
/// automatically.
#[derive(Debug)]
pub struct SpawnFastpath {
    /// Exec image cache consulted by every spawn while enabled.
    pub cache: Arc<Mutex<ImageCache>>,
    /// Warm pool of pre-built children.
    pub pool: Arc<Mutex<WarmPool>>,
}

impl SpawnFastpath {
    /// Read access to the image cache (counters, occupancy).
    pub fn cache(&self) -> MutexGuard<'_, ImageCache> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Read access to the warm pool (counters, occupancy).
    pub fn pool(&self) -> MutexGuard<'_, WarmPool> {
        self.pool.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A booted simulated OS.
#[derive(Debug)]
pub struct Os {
    /// The kernel.
    pub kernel: Kernel,
    /// Registered executable images.
    pub images: ImageRegistry,
    /// ASLR policy.
    pub aslr: AslrConfig,
    /// PID of init.
    pub init: Pid,
    rng: Rng,
    /// `Some` while the spawn fast path is enabled; `None` keeps every
    /// spawn byte-identical to the classic `posix_spawn`.
    fastpath: Option<SpawnFastpath>,
}

impl Os {
    /// Boots a machine, creates init, and registers the standard images
    /// (`/bin/sh`, `/bin/cat`, `/bin/grep`, `/bin/wc`, `/bin/tool`,
    /// `/bin/server`).
    pub fn boot(cfg: OsConfig) -> Os {
        let mut kernel = Kernel::new(cfg.machine.clone());
        let init = kernel.create_init("init").expect("fresh machine boots");
        Os::assemble(kernel, init, &cfg)
    }

    /// Boots one SMP *cell*: the same facade as [`Os::boot`], but the
    /// kernel draws frames, PIDs, TLB rounds and the OOM trigger from the
    /// machine-wide [`fpr_kernel::SmpShared`] instead of owning them.
    /// Cells booted from one `SmpShared` can run on different OS threads
    /// (see `crate::smp::SmpOs`) while every machine-wide resource stays
    /// conserved.
    pub fn boot_smp(cfg: OsConfig, shared: &fpr_kernel::SmpShared, cell: usize) -> Os {
        let mut kernel = fpr_kernel::Kernel::new_smp(cfg.machine.clone(), shared, cell);
        let init = kernel.create_init("init").expect("fresh cell boots");
        Os::assemble(kernel, init, &cfg)
    }

    fn assemble(kernel: Kernel, init: Pid, cfg: &OsConfig) -> Os {
        let mut images = ImageRegistry::new();
        for name in ["sh", "cat", "grep", "wc", "tool"] {
            images.register(&format!("/bin/{name}"), Image::small(name));
        }
        images.register("/bin/server", Image::large("server"));
        Os {
            kernel,
            images,
            aslr: cfg.aslr,
            init,
            rng: Rng::seed_from_u64(cfg.seed),
            fastpath: None,
        }
    }

    /// Boots with defaults.
    pub fn boot_default() -> Os {
        Os::boot(OsConfig::default())
    }

    /// Registers an additional image.
    pub fn register_image(&mut self, path: &str, image: Image) -> u64 {
        self.images.register(path, image)
    }

    /// Draws a fresh ASLR seed.
    pub fn fresh_seed(&mut self) -> u64 {
        self.rng.gen_u64()
    }

    /// `fork(2)`.
    pub fn fork(&mut self, parent: Pid) -> KResult<Pid> {
        fpr_api::fork(&mut self.kernel, parent)
    }

    /// Instrumented fork returning work statistics.
    pub fn fork_stats(
        &mut self,
        parent: Pid,
        mode: ForkMode,
    ) -> KResult<(Pid, fpr_api::ForkStats)> {
        let tid = self.kernel.process(parent)?.main_tid();
        fpr_api::fork_from_thread(&mut self.kernel, parent, tid, mode)
    }

    /// `vfork(2)`.
    pub fn vfork(&mut self, parent: Pid) -> KResult<Pid> {
        fpr_api::vfork(&mut self.kernel, parent)
    }

    /// Fork-with-`mode` and exec `path` as one transactional call
    /// ([`fpr_api::fork_exec`]): an exec failure reaps the half-made
    /// child before the error returns. The request-serving entry point
    /// the E15 service loop uses for its fork-family paths.
    pub fn fork_exec(&mut self, parent: Pid, path: &str, mode: ForkMode) -> KResult<Pid> {
        let seed = self.fresh_seed();
        fpr_api::fork_exec(
            &mut self.kernel,
            parent,
            &self.images,
            path,
            mode,
            self.aslr,
            seed,
        )
    }

    /// vfork and exec `path` as one call ([`fpr_api::vfork_exec`]); the
    /// parent is suspended only inside the call.
    pub fn vfork_exec(&mut self, parent: Pid, path: &str) -> KResult<Pid> {
        let seed = self.fresh_seed();
        fpr_api::vfork_exec(
            &mut self.kernel,
            parent,
            &self.images,
            path,
            self.aslr,
            seed,
        )
    }

    /// `execve(2)` with a fresh random layout.
    pub fn exec(&mut self, pid: Pid, path: &str) -> KResult<()> {
        let seed = self.fresh_seed();
        fpr_exec::execve(&mut self.kernel, pid, &self.images, path, self.aslr, seed)
    }

    /// `posix_spawn(3)` with a fresh random layout. While the spawn fast
    /// path is enabled this routes through the warm pool + image cache
    /// (same semantics, fewer cycles); otherwise it is the classic call.
    pub fn spawn(
        &mut self,
        parent: Pid,
        path: &str,
        actions: &[FileAction],
        attrs: &SpawnAttrs,
    ) -> KResult<Pid> {
        let seed = self.fresh_seed();
        match &mut self.fastpath {
            Some(f) => fpr_api::spawn_fast(
                &mut self.kernel,
                parent,
                &self.images,
                path,
                actions,
                attrs,
                self.aslr,
                seed,
                &mut f.cache.lock().unwrap_or_else(|p| p.into_inner()),
                &mut f.pool.lock().unwrap_or_else(|p| p.into_inner()),
            ),
            None => fpr_api::posix_spawn(
                &mut self.kernel,
                parent,
                &self.images,
                path,
                actions,
                attrs,
                self.aslr,
                seed,
            ),
        }
    }

    /// Turns the spawn fast path on: binds every registered binary to a
    /// backing VFS file (so rewrites invalidate the cache), installs an
    /// empty image cache + warm pool, and registers both with the kernel
    /// as memory-pressure shrinkers (pool first: draining warm children
    /// frees more per step than evicting cache entries whose frames they
    /// share). Idempotent.
    pub fn enable_spawn_fastpath(&mut self) -> KResult<()> {
        self.ensure_vfs_backing()?;
        if self.fastpath.is_none() {
            let cache = Arc::new(Mutex::new(ImageCache::new()));
            let pool = Arc::new(Mutex::new(WarmPool::new(self.init)));
            self.kernel
                .register_shrinker(&(pool.clone() as ShrinkerHandle));
            self.kernel
                .register_shrinker(&(cache.clone() as ShrinkerHandle));
            self.fastpath = Some(SpawnFastpath { cache, pool });
        }
        Ok(())
    }

    /// Turns the fast path off again, draining the pool and unpinning
    /// every cached frame. Spawns go back to the classic path, and
    /// dropping the strong handles unregisters both shrinkers.
    pub fn disable_spawn_fastpath(&mut self) -> KResult<()> {
        if let Some(f) = self.fastpath.take() {
            f.pool
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .drain(&mut self.kernel)?;
            f.cache
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clear(&mut self.kernel);
        }
        Ok(())
    }

    /// True while spawns route through the fast path.
    pub fn fastpath_enabled(&self) -> bool {
        self.fastpath.is_some()
    }

    /// Read access to the fast-path state (counters, pool occupancy).
    pub fn fastpath(&self) -> Option<&SpawnFastpath> {
        self.fastpath.as_ref()
    }

    /// Pre-builds `n` warm children of `path` (fails with
    /// [`Errno::Einval`] unless the fast path is enabled).
    pub fn pool_prefill(&mut self, path: &str, n: usize) -> KResult<()> {
        let f = self.fastpath.as_mut().ok_or(Errno::Einval)?;
        f.pool.lock().unwrap_or_else(|p| p.into_inner()).prefill(
            &mut self.kernel,
            &self.images,
            &mut f.cache.lock().unwrap_or_else(|p| p.into_inner()),
            path,
            n,
        )
    }

    /// Pressure-gated pool sizing ([`WarmPool::autoscale`]): tops the
    /// warm pool up to `target` children of `path` unless memory
    /// pressure is [`fpr_mem::PressureLevel::High`] or worse. Returns
    /// the number of children built (fails with [`Errno::Einval`] unless
    /// the fast path is enabled). Service loops call this on their
    /// maintenance tick; after a pressure storm drains the pool this is
    /// what restores the fast path.
    pub fn pool_autoscale(&mut self, path: &str, target: usize) -> KResult<usize> {
        let f = self.fastpath.as_mut().ok_or(Errno::Einval)?;
        f.pool.lock().unwrap_or_else(|p| p.into_inner()).autoscale(
            &mut self.kernel,
            &self.images,
            &mut f.cache.lock().unwrap_or_else(|p| p.into_inner()),
            path,
            target,
        )
    }

    /// Rewrites the backing file of the binary at `path`, bumping its
    /// write generation — from then on its effective file id changes, so
    /// cached frames and parked children built from the old bytes are
    /// stale and will be discarded rather than served. Returns the new
    /// generation.
    pub fn rewrite_binary(&mut self, path: &str) -> KResult<u64> {
        self.ensure_vfs_backing()?;
        let img = self.images.lookup(path).ok_or(Errno::Enoent)?;
        let file_id = img.file_id;
        let ino = self.images.backing_ino(file_id).ok_or(Errno::Enoent)?;
        self.kernel.vfs.write_at(ino, 0, b"patched")?;
        Ok(self.kernel.vfs.generation(ino))
    }

    /// Creates a VFS file behind every registered binary that lacks one
    /// and binds it in the registry. Run identity note: this is only
    /// called from the fast-path/rewrite knobs, so default runs never
    /// touch the VFS and stay byte-identical to the classic behaviour.
    fn ensure_vfs_backing(&mut self) -> KResult<()> {
        let root = self.kernel.vfs.root();
        if self.kernel.vfs.resolve("/bin", root).is_err() {
            self.kernel.vfs.mkdir("/bin", root)?;
        }
        let paths: Vec<String> = self.images.paths().iter().map(|p| p.to_string()).collect();
        for path in paths {
            let Some(img) = self.images.lookup(&path) else {
                continue; // scripts resolve through their interpreter
            };
            if self.images.backing_ino(img.file_id).is_some() {
                continue;
            }
            let ino = match self.kernel.vfs.resolve(&path, root) {
                Ok(ino) => ino,
                Err(_) => self
                    .kernel
                    .vfs
                    .create(&path, root, format!("ELF:{path}").into_bytes())?,
            };
            self.images.bind_backing(&path, ino);
        }
        Ok(())
    }

    /// Starts a cross-process builder spawn with a fresh random layout.
    pub fn spawn_builder(
        &mut self,
        parent: Pid,
        builder: ProcessBuilder,
    ) -> KResult<fpr_api::Spawned> {
        let seed = self.fresh_seed();
        builder
            .aslr(self.aslr, seed)
            .spawn(&mut self.kernel, parent, &self.images)
    }

    /// Measures the simulated cycles a closure spends.
    pub fn measure<T>(&mut self, f: impl FnOnce(&mut Os) -> T) -> (T, u64) {
        let before = self.kernel.cycles.total();
        let out = f(self);
        (out, self.kernel.cycles.total() - before)
    }

    /// Builds a synthetic parent process matching `shape`: execs
    /// `/bin/tool`, maps and populates the heap across the requested VMA
    /// count, opens descriptors, and starts threads.
    pub fn make_parent(&mut self, shape: ProcessShape) -> KResult<Pid> {
        let pid = self.kernel.allocate_process(self.init, "parent")?;
        let seed = self.fresh_seed();
        fpr_exec::execve(
            &mut self.kernel,
            pid,
            &self.images,
            "/bin/tool",
            self.aslr,
            seed,
        )?;
        let per_vma = shape.pages_per_vma();
        let mut mapped = 0;
        while mapped < shape.heap_pages {
            let pages = per_vma.min(shape.heap_pages - mapped);
            let base = self
                .kernel
                .mmap_anon(pid, pages, Prot::RW, Share::Private)?;
            self.kernel.populate(pid, base, pages)?;
            mapped += pages;
        }
        for i in 0..shape.extra_fds {
            self.kernel.open(
                pid,
                &format!("/tmp_fd_{}_{}", pid.0, i),
                fpr_kernel::OpenFlags::RDWR,
                true,
            )?;
        }
        for _ in 0..shape.extra_threads {
            self.kernel.spawn_thread(pid)?;
        }
        Ok(pid)
    }

    /// The base page of the first heap-class VMA mapped after exec (the
    /// synthetic parent's data region).
    pub fn first_mmap_base(&self, pid: Pid) -> KResult<Vpn> {
        let p = self.kernel.process(pid)?;
        p.aspace
            .vmas()
            .find(|v| v.kind == fpr_mem::VmaKind::Mmap)
            .map(|v| v.start)
            .ok_or(fpr_kernel::Errno::Enoent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_registers_standard_images() {
        let os = Os::boot_default();
        assert!(os.images.lookup("/bin/sh").is_some());
        assert!(os.images.lookup("/bin/server").is_some());
        assert_eq!(os.kernel.process(os.init).unwrap().name, "init");
    }

    #[test]
    fn same_seed_same_layouts() {
        let mut a = Os::boot(OsConfig {
            seed: 7,
            ..Default::default()
        });
        let mut b = Os::boot(OsConfig {
            seed: 7,
            ..Default::default()
        });
        let pa = a
            .spawn(a.init, "/bin/sh", &[], &SpawnAttrs::default())
            .unwrap();
        let pb = b
            .spawn(b.init, "/bin/sh", &[], &SpawnAttrs::default())
            .unwrap();
        assert_eq!(
            a.kernel.process(pa).unwrap().layout,
            b.kernel.process(pb).unwrap().layout
        );
    }

    #[test]
    fn make_parent_matches_shape() {
        let mut os = Os::boot_default();
        let shape = ProcessShape {
            heap_pages: 64,
            vma_count: 4,
            extra_fds: 5,
            extra_threads: 2,
        };
        let pid = os.make_parent(shape).unwrap();
        let p = os.kernel.process(pid).unwrap();
        assert!(p.resident_pages() >= 64);
        assert_eq!(p.threads.len(), 3);
        assert_eq!(
            p.fds.open_count(),
            5,
            "exec'd process has no stdio; 5 opened"
        );
        let mmap_vmas = p
            .aspace
            .vmas()
            .filter(|v| v.kind == fpr_mem::VmaKind::Mmap)
            .count();
        assert_eq!(mmap_vmas, 4);
    }

    #[test]
    fn measure_counts_cycles() {
        let mut os = Os::boot_default();
        let init = os.init;
        let (_, zero) = os.measure(|_| ());
        assert_eq!(zero, 0);
        let (child, cost) = os.measure(|os| os.fork(init).unwrap());
        assert!(cost > 0);
        assert!(os.kernel.process(child).is_ok());
    }

    #[test]
    fn facade_apis_compose() {
        let mut os = Os::boot_default();
        let init = os.init;
        let c = os
            .spawn(init, "/bin/cat", &[], &SpawnAttrs::default())
            .unwrap();
        assert_eq!(os.kernel.process(c).unwrap().name, "cat");
        os.exec(c, "/bin/grep").unwrap();
        assert_eq!(os.kernel.process(c).unwrap().name, "grep");
        let v = os.vfork(c).unwrap();
        os.kernel.exit(v, 0).unwrap();
        os.kernel.waitpid(c, Some(v)).unwrap();
    }
}
