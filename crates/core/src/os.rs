//! The `Os` facade: one object bundling the kernel, the image registry
//! and the ASLR source, with convenience wrappers over the five creation
//! APIs.
//!
//! Everything the examples and experiments need goes through here, so a
//! downstream user writes `os.fork(pid)` / `os.spawn(pid, "/bin/tool")`
//! instead of threading four subsystems by hand.

use fpr_api::{FileAction, ProcessBuilder, SpawnAttrs};
use fpr_exec::{AslrConfig, Image, ImageRegistry};
use fpr_kernel::{KResult, Kernel, MachineConfig, Pid};
use fpr_mem::{ForkMode, Prot, Share, Vpn};
use fpr_trace::ProcessShape;
use fpr_rng::Rng;

/// Configuration for [`Os::boot`].
#[derive(Debug, Clone)]
pub struct OsConfig {
    /// Machine parameters (frames, CPUs, overcommit, cost model).
    pub machine: MachineConfig,
    /// ASLR policy for exec/spawn layouts.
    pub aslr: AslrConfig,
    /// Seed for all randomness (layouts, workloads) — same seed, same run.
    pub seed: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            machine: MachineConfig::default(),
            aslr: AslrConfig::default(),
            seed: 42,
        }
    }
}

/// A booted simulated OS.
#[derive(Debug)]
pub struct Os {
    /// The kernel.
    pub kernel: Kernel,
    /// Registered executable images.
    pub images: ImageRegistry,
    /// ASLR policy.
    pub aslr: AslrConfig,
    /// PID of init.
    pub init: Pid,
    rng: Rng,
}

impl Os {
    /// Boots a machine, creates init, and registers the standard images
    /// (`/bin/sh`, `/bin/cat`, `/bin/grep`, `/bin/wc`, `/bin/tool`,
    /// `/bin/server`).
    pub fn boot(cfg: OsConfig) -> Os {
        let mut kernel = Kernel::new(cfg.machine);
        let init = kernel.create_init("init").expect("fresh machine boots");
        let mut images = ImageRegistry::new();
        for name in ["sh", "cat", "grep", "wc", "tool"] {
            images.register(&format!("/bin/{name}"), Image::small(name));
        }
        images.register("/bin/server", Image::large("server"));
        Os {
            kernel,
            images,
            aslr: cfg.aslr,
            init,
            rng: Rng::seed_from_u64(cfg.seed),
        }
    }

    /// Boots with defaults.
    pub fn boot_default() -> Os {
        Os::boot(OsConfig::default())
    }

    /// Registers an additional image.
    pub fn register_image(&mut self, path: &str, image: Image) -> u64 {
        self.images.register(path, image)
    }

    /// Draws a fresh ASLR seed.
    pub fn fresh_seed(&mut self) -> u64 {
        self.rng.gen_u64()
    }

    /// `fork(2)`.
    pub fn fork(&mut self, parent: Pid) -> KResult<Pid> {
        fpr_api::fork(&mut self.kernel, parent)
    }

    /// Instrumented fork returning work statistics.
    pub fn fork_stats(
        &mut self,
        parent: Pid,
        mode: ForkMode,
    ) -> KResult<(Pid, fpr_api::ForkStats)> {
        let tid = self.kernel.process(parent)?.main_tid();
        fpr_api::fork_from_thread(&mut self.kernel, parent, tid, mode)
    }

    /// `vfork(2)`.
    pub fn vfork(&mut self, parent: Pid) -> KResult<Pid> {
        fpr_api::vfork(&mut self.kernel, parent)
    }

    /// `execve(2)` with a fresh random layout.
    pub fn exec(&mut self, pid: Pid, path: &str) -> KResult<()> {
        let seed = self.fresh_seed();
        fpr_exec::execve(&mut self.kernel, pid, &self.images, path, self.aslr, seed)
    }

    /// `posix_spawn(3)` with a fresh random layout.
    pub fn spawn(
        &mut self,
        parent: Pid,
        path: &str,
        actions: &[FileAction],
        attrs: &SpawnAttrs,
    ) -> KResult<Pid> {
        let seed = self.fresh_seed();
        fpr_api::posix_spawn(
            &mut self.kernel,
            parent,
            &self.images,
            path,
            actions,
            attrs,
            self.aslr,
            seed,
        )
    }

    /// Starts a cross-process builder spawn with a fresh random layout.
    pub fn spawn_builder(
        &mut self,
        parent: Pid,
        builder: ProcessBuilder,
    ) -> KResult<fpr_api::Spawned> {
        let seed = self.fresh_seed();
        builder
            .aslr(self.aslr, seed)
            .spawn(&mut self.kernel, parent, &self.images)
    }

    /// Measures the simulated cycles a closure spends.
    pub fn measure<T>(&mut self, f: impl FnOnce(&mut Os) -> T) -> (T, u64) {
        let before = self.kernel.cycles.total();
        let out = f(self);
        (out, self.kernel.cycles.total() - before)
    }

    /// Builds a synthetic parent process matching `shape`: execs
    /// `/bin/tool`, maps and populates the heap across the requested VMA
    /// count, opens descriptors, and starts threads.
    pub fn make_parent(&mut self, shape: ProcessShape) -> KResult<Pid> {
        let pid = self.kernel.allocate_process(self.init, "parent")?;
        let seed = self.fresh_seed();
        fpr_exec::execve(
            &mut self.kernel,
            pid,
            &self.images,
            "/bin/tool",
            self.aslr,
            seed,
        )?;
        let per_vma = shape.pages_per_vma();
        let mut mapped = 0;
        while mapped < shape.heap_pages {
            let pages = per_vma.min(shape.heap_pages - mapped);
            let base = self
                .kernel
                .mmap_anon(pid, pages, Prot::RW, Share::Private)?;
            self.kernel.populate(pid, base, pages)?;
            mapped += pages;
        }
        for i in 0..shape.extra_fds {
            self.kernel.open(
                pid,
                &format!("/tmp_fd_{}_{}", pid.0, i),
                fpr_kernel::OpenFlags::RDWR,
                true,
            )?;
        }
        for _ in 0..shape.extra_threads {
            self.kernel.spawn_thread(pid)?;
        }
        Ok(pid)
    }

    /// The base page of the first heap-class VMA mapped after exec (the
    /// synthetic parent's data region).
    pub fn first_mmap_base(&self, pid: Pid) -> KResult<Vpn> {
        let p = self.kernel.process(pid)?;
        p.aspace
            .vmas()
            .find(|v| v.kind == fpr_mem::VmaKind::Mmap)
            .map(|v| v.start)
            .ok_or(fpr_kernel::Errno::Enoent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_registers_standard_images() {
        let os = Os::boot_default();
        assert!(os.images.lookup("/bin/sh").is_some());
        assert!(os.images.lookup("/bin/server").is_some());
        assert_eq!(os.kernel.process(os.init).unwrap().name, "init");
    }

    #[test]
    fn same_seed_same_layouts() {
        let mut a = Os::boot(OsConfig {
            seed: 7,
            ..Default::default()
        });
        let mut b = Os::boot(OsConfig {
            seed: 7,
            ..Default::default()
        });
        let pa = a
            .spawn(a.init, "/bin/sh", &[], &SpawnAttrs::default())
            .unwrap();
        let pb = b
            .spawn(b.init, "/bin/sh", &[], &SpawnAttrs::default())
            .unwrap();
        assert_eq!(
            a.kernel.process(pa).unwrap().layout,
            b.kernel.process(pb).unwrap().layout
        );
    }

    #[test]
    fn make_parent_matches_shape() {
        let mut os = Os::boot_default();
        let shape = ProcessShape {
            heap_pages: 64,
            vma_count: 4,
            extra_fds: 5,
            extra_threads: 2,
        };
        let pid = os.make_parent(shape).unwrap();
        let p = os.kernel.process(pid).unwrap();
        assert!(p.resident_pages() >= 64);
        assert_eq!(p.threads.len(), 3);
        assert_eq!(
            p.fds.open_count(),
            5,
            "exec'd process has no stdio; 5 opened"
        );
        let mmap_vmas = p
            .aspace
            .vmas()
            .filter(|v| v.kind == fpr_mem::VmaKind::Mmap)
            .count();
        assert_eq!(mmap_vmas, 4);
    }

    #[test]
    fn measure_counts_cycles() {
        let mut os = Os::boot_default();
        let init = os.init;
        let (_, zero) = os.measure(|_| ());
        assert_eq!(zero, 0);
        let (child, cost) = os.measure(|os| os.fork(init).unwrap());
        assert!(cost > 0);
        assert!(os.kernel.process(child).is_ok());
    }

    #[test]
    fn facade_apis_compose() {
        let mut os = Os::boot_default();
        let init = os.init;
        let c = os
            .spawn(init, "/bin/cat", &[], &SpawnAttrs::default())
            .unwrap();
        assert_eq!(os.kernel.process(c).unwrap().name, "cat");
        os.exec(c, "/bin/grep").unwrap();
        assert_eq!(os.kernel.process(c).unwrap().name, "grep");
        let v = os.vfork(c).unwrap();
        os.kernel.exit(v, 0).unwrap();
        os.kernel.waitpid(c, Some(v)).unwrap();
    }
}
