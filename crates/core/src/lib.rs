//! # forkroad-core — the *fork() in the road* reproduction, assembled
//!
//! Ties the substrates together behind one facade ([`os::Os`]) and ships
//! the experiment drivers ([`experiments`]) that regenerate every figure
//! and table of the paper's evaluation. See DESIGN.md for the paper →
//! module map and EXPERIMENTS.md for measured results.
//!
//! ## Quick start
//!
//! ```
//! use forkroad_core::os::{Os, OsConfig};
//! use fpr_api::SpawnAttrs;
//!
//! let mut os = Os::boot(OsConfig::default());
//! let init = os.init;
//! // The expensive way: duplicate init, then throw the copy away.
//! let forked = os.fork(init).unwrap();
//! os.exec(forked, "/bin/sh").unwrap();
//! // The cheap way: build the child directly.
//! let spawned = os.spawn(init, "/bin/sh", &[], &SpawnAttrs::default()).unwrap();
//! assert_eq!(os.kernel.process(spawned).unwrap().name, "sh");
//! ```

pub mod experiments;
pub mod os;
pub mod smp;

pub use os::{Os, OsConfig};
pub use smp::SmpOs;
