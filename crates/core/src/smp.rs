//! The SMP driver: several [`Os`] cells over one shared machine, driven
//! by real OS threads.
//!
//! The tentpole claim of the multicore experiment (E16) is that the
//! simulated kernel is genuinely `Send` — process creation can run on
//! concurrent host threads — while *measured* time stays virtual: each
//! worker thread carries its own [`fpr_trace::vclock`], every shared
//! structure is guarded by a named [`VLock`] that prices hand-offs in
//! virtual cycles, and throughput is computed from the slowest worker's
//! virtual elapsed time, not from wall-clock (which on a 1-core CI host
//! would measure the host scheduler, not the simulated machine).
//!
//! A cell is one `Os` facade whose kernel draws frames, PIDs, TLB rounds
//! and the OOM trigger from a machine-wide [`SmpShared`]. The cell itself
//! sits behind a `VLock` named `"mm"` — the per-address-space lock every
//! fork-family call holds — so arms that funnel all workers into one cell
//! reproduce fork's mm-serialization, and arms with a cell per worker
//! show what independent address spaces buy.
//!
//! Lock order (documented in ARCHITECTURE.md): `mm` → `pid` → `buddy` →
//! `tlb`. Workers only ever hold one `mm` lock at a time, and the shared
//! subsystems never call back up into a cell, so the order is acyclic.

use crate::os::{Os, OsConfig};
use fpr_kernel::{Kernel, KernelBaseline, SmpShared};
use fpr_trace::smp::VLock;
use fpr_trace::vclock;
use std::sync::Arc;

// The whole point: a cell must be shippable to another OS thread.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Os>();
    assert_send::<Kernel>();
};

/// A booted SMP machine: shared subsystems plus one lockable cell per
/// logical core.
#[derive(Debug)]
pub struct SmpOs {
    /// Machine-wide shared subsystems (frame pool, PID table, TLB bus,
    /// OOM single-flight guard).
    pub shared: SmpShared,
    cells: Vec<Arc<VLock<Os>>>,
    baselines: Vec<KernelBaseline>,
}

impl SmpOs {
    /// Boots `ncells` cells over one shared machine. Cell `c` seeds its
    /// ASLR stream with `cfg.seed + c`, so runs are deterministic but
    /// cells don't mirror each other's layouts. The booting thread's
    /// virtual clock is reset afterwards: virtual time zero is "machine
    /// booted".
    pub fn boot(cfg: OsConfig, ncells: usize) -> SmpOs {
        let shared = SmpShared::new(&cfg.machine, ncells);
        let cells: Vec<Arc<VLock<Os>>> = (0..ncells)
            .map(|c| {
                let cell_cfg = OsConfig {
                    seed: cfg.seed.wrapping_add(c as u64),
                    ..cfg.clone()
                };
                Arc::new(VLock::new("mm", Os::boot_smp(cell_cfg, &shared, c)))
            })
            .collect();
        vclock::reset();
        let baselines = cells.iter().map(|c| c.lock().kernel.baseline()).collect();
        SmpOs {
            shared,
            cells,
            baselines,
        }
    }

    /// Number of cells.
    pub fn ncells(&self) -> usize {
        self.cells.len()
    }

    /// The lock guarding cell `c` (panics if out of range). Workers hold
    /// it for the duration of each kernel operation — it is the mm lock.
    pub fn cell(&self, c: usize) -> &VLock<Os> {
        &self.cells[c]
    }

    /// Runs `f(worker_index, self)` on `threads` real OS threads and
    /// returns each worker's *virtual* elapsed cycles.
    ///
    /// Every worker's clock starts at the caller's current virtual time
    /// (so release stamps written during setup never read as future
    /// contention), and each worker flushes its thread-local metrics into
    /// the global snapshot before finishing.
    pub fn run<F>(&self, threads: usize, f: F) -> Vec<u64>
    where
        F: Fn(usize, &SmpOs) + Send + Sync,
    {
        let epoch = vclock::now();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let f = &f;
                    s.spawn(move || {
                        vclock::reset();
                        vclock::advance_to(epoch);
                        f(t, self);
                        fpr_trace::metrics::flush();
                        vclock::now() - epoch
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("smp worker panicked"))
                .collect()
        })
    }

    /// Structural violations right now: every cell's
    /// [`Kernel::check_invariants`] plus machine-wide frame conservation
    /// (every frame is free in the pool or drawn by exactly one cell).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let mut drawn = 0u64;
        for (i, cell) in self.cells.iter().enumerate() {
            let os = cell.lock();
            if let Err(errs) = os.kernel.check_invariants() {
                v.extend(errs.into_iter().map(|e| format!("cell {i}: {e}")));
            }
            drawn += os.kernel.phys.drawn_frames();
        }
        let pool = &self.shared.pool;
        if drawn + pool.free_frames() != pool.total_frames() {
            v.push(format!(
                "frame conservation: {} drawn + {} pool-free != {} total",
                drawn,
                pool.free_frames(),
                pool.total_frames()
            ));
        }
        v
    }

    /// Quiesce check for workloads that destroyed everything they made:
    /// no structural violations, and every cell back at its boot
    /// baseline (no leaked frames, PIDs, descriptions, pipes or commit).
    ///
    /// # Panics
    ///
    /// Panics with the full violation list otherwise.
    pub fn check_quiesced(&self) {
        let v = self.violations();
        assert!(
            v.is_empty(),
            "smp invariants violated at quiesce:\n  {}",
            v.join("\n  ")
        );
        for (i, cell) in self.cells.iter().enumerate() {
            let os = cell.lock();
            if let Err(errs) = os.kernel.leak_check(&self.baselines[i]) {
                panic!("cell {i} leaked:\n  {}", errs.join("\n  "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_api::SpawnAttrs;

    #[test]
    fn cells_boot_and_quiesce_clean() {
        let smp = SmpOs::boot(OsConfig::default(), 2);
        assert_eq!(smp.ncells(), 2);
        assert!(smp.violations().is_empty());
        smp.check_quiesced();
    }

    #[test]
    fn workers_create_and_destroy_concurrently() {
        let smp = SmpOs::boot(OsConfig::default(), 4);
        let elapsed = smp.run(4, |t, smp| {
            let mut os = smp.cell(t).lock();
            let init = os.init;
            for _ in 0..8 {
                let c = os.fork(init).expect("fork");
                os.kernel.exit(c, 0).expect("exit");
                os.kernel.waitpid(init, Some(c)).expect("reap");
            }
        });
        assert_eq!(elapsed.len(), 4);
        assert!(elapsed.iter().all(|&e| e > 0), "workers did virtual work");
        smp.check_quiesced();
    }

    #[test]
    fn workers_sharing_one_cell_serialize() {
        let smp = SmpOs::boot(OsConfig::default(), 1);
        let solo = smp.run(1, |_, smp| {
            let mut os = smp.cell(0).lock();
            let init = os.init;
            for _ in 0..8 {
                let c = os.spawn(init, "/bin/sh", &[], &SpawnAttrs::default()).expect("spawn");
                os.kernel.exit(c, 0).expect("exit");
                os.kernel.waitpid(init, Some(c)).expect("reap");
            }
        });
        // Four workers hammering the same cell: the slowest worker's
        // virtual time covers (almost) all the work, because every op
        // holds the one mm lock.
        let four = smp.run(4, |_, smp| {
            for _ in 0..8 {
                let mut os = smp.cell(0).lock();
                let init = os.init;
                let c = os.spawn(init, "/bin/sh", &[], &SpawnAttrs::default()).expect("spawn");
                os.kernel.exit(c, 0).expect("exit");
                os.kernel.waitpid(init, Some(c)).expect("reap");
            }
        });
        let wall_solo = solo.iter().max().copied().unwrap();
        let wall_four = four.iter().max().copied().unwrap();
        assert!(
            wall_four > wall_solo * 3,
            "4 workers on one mm lock must serialize: {wall_four} vs {wall_solo}"
        );
        smp.check_quiesced();
    }
}
