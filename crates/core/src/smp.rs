//! The SMP driver: several [`Os`] cells over one shared machine, driven
//! by real OS threads.
//!
//! The tentpole claim of the multicore experiment (E16) is that the
//! simulated kernel is genuinely `Send` — process creation can run on
//! concurrent host threads — while *measured* time stays virtual: each
//! worker thread carries its own [`fpr_trace::vclock`], every shared
//! structure is guarded by a named [`VLock`] that prices hand-offs in
//! virtual cycles, and throughput is computed from the slowest worker's
//! virtual elapsed time, not from wall-clock (which on a 1-core CI host
//! would measure the host scheduler, not the simulated machine).
//!
//! A cell is one `Os` facade whose kernel draws frames, PIDs, TLB rounds
//! and the OOM trigger from a machine-wide [`SmpShared`]. The cell itself
//! sits behind a `VLock` named `"mm"` — the per-address-space lock every
//! fork-family call holds — so arms that funnel all workers into one cell
//! reproduce fork's mm-serialization, and arms with a cell per worker
//! show what independent address spaces buy.
//!
//! Lock order (documented in ARCHITECTURE.md): `mm` → `pid` → `buddy` →
//! `tlb`. Workers only ever hold one `mm` lock at a time, and the shared
//! subsystems never call back up into a cell, so the order is acyclic.
//! The order is *enforced* at runtime by [`VLock`]'s per-thread rank
//! tracker; any out-of-order acquisition bumps a process-global counter
//! the E17 gate asserts is zero.
//!
//! ## Fail-stop (E17)
//!
//! [`SmpOs::fail_cell`] models a cell dying mid-operation at a chosen
//! fault site: the cell takes one last doomed operation with the site
//! armed, is marked dead, and is then *recovered* — its processes
//! reaped (returning their PIDs to the shared table), its frame
//! magazine drained back to the [`SharedFramePool`], and its stuck
//! machine-wide OOM lease broken — so the machine degrades from N cells
//! to N−1 with zero leaked frames and zero stuck locks. Dead cells are
//! thereafter held to a stricter quiesce standard than survivors: not
//! "back at boot baseline" but *empty*.
//!
//! [`SharedFramePool`]: fpr_mem::SharedFramePool

use crate::os::{Os, OsConfig};
use fpr_faults::{FaultPlan, FaultSite};
use fpr_kernel::{Kernel, KernelBaseline, SmpShared};
use fpr_trace::smp::VLock;
use fpr_trace::vclock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// The whole point: a cell must be shippable to another OS thread.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Os>();
    assert_send::<Kernel>();
};

/// A booted SMP machine: shared subsystems plus one lockable cell per
/// logical core.
#[derive(Debug)]
pub struct SmpOs {
    /// Machine-wide shared subsystems (frame pool, PID table, TLB bus,
    /// OOM single-flight guard).
    pub shared: SmpShared,
    cells: Vec<Arc<VLock<Os>>>,
    baselines: Vec<KernelBaseline>,
    /// `dead[c]` is set by [`SmpOs::fail_cell`]; workers poll
    /// [`SmpOs::is_dead`] and route around a failed cell.
    dead: Vec<AtomicBool>,
}

/// What [`SmpOs::fail_cell`] did, for assertions and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFailure {
    /// Which cell died.
    pub cell: usize,
    /// The fault site armed for the dying operation.
    pub site: FaultSite,
    /// Whether the dying operation actually reached (and was killed at)
    /// the armed site — `false` means the op's path doesn't cross it,
    /// and the cell was fail-stopped right after a clean op instead.
    pub died_at_site: bool,
    /// Processes reaped during evacuation.
    pub evacuated: u64,
    /// Whether the dead cell held the machine-wide OOM lease at death
    /// (recovery broke it; survivors' OOM kills were never blocked).
    pub lease_was_stuck: bool,
}

impl SmpOs {
    /// Boots `ncells` cells over one shared machine. Cell `c` seeds its
    /// ASLR stream with `cfg.seed + c`, so runs are deterministic but
    /// cells don't mirror each other's layouts. The booting thread's
    /// virtual clock is reset afterwards: virtual time zero is "machine
    /// booted".
    pub fn boot(cfg: OsConfig, ncells: usize) -> SmpOs {
        let shared = SmpShared::new(&cfg.machine, ncells);
        let cells: Vec<Arc<VLock<Os>>> = (0..ncells)
            .map(|c| {
                let cell_cfg = OsConfig {
                    seed: cfg.seed.wrapping_add(c as u64),
                    ..cfg.clone()
                };
                Arc::new(VLock::new("mm", Os::boot_smp(cell_cfg, &shared, c)))
            })
            .collect();
        vclock::reset();
        let baselines = cells.iter().map(|c| c.lock().kernel.baseline()).collect();
        let dead = (0..ncells).map(|_| AtomicBool::new(false)).collect();
        SmpOs {
            shared,
            cells,
            baselines,
            dead,
        }
    }

    /// Number of cells.
    pub fn ncells(&self) -> usize {
        self.cells.len()
    }

    /// The lock guarding cell `c` (panics if out of range). Workers hold
    /// it for the duration of each kernel operation — it is the mm lock.
    pub fn cell(&self, c: usize) -> &VLock<Os> {
        &self.cells[c]
    }

    /// True once [`SmpOs::fail_cell`] has killed cell `c`. Storm workers
    /// poll this and redirect work to a surviving cell.
    pub fn is_dead(&self, c: usize) -> bool {
        self.dead[c].load(Ordering::Acquire)
    }

    /// Number of cells still alive.
    pub fn live_cells(&self) -> usize {
        self.dead
            .iter()
            .filter(|d| !d.load(Ordering::Acquire))
            .count()
    }

    /// Fail-stops cell `c` at fault site `site` and recovers the shared
    /// machine (E17's crash arm). Safe to call while other threads storm
    /// the surviving cells; must not be called inside
    /// [`fpr_faults::with_plan`] (the dying gasp installs its own plan).
    ///
    /// The sequence, all under cell `c`'s mm lock:
    ///
    /// 1. **Die**: one last `fork` runs with `site` armed to inject on
    ///    first crossing — the cell's final operation fails mid-flight
    ///    exactly where the sweep points. (Creation ops are
    ///    transactional, so even the dying gasp leaves no half-made
    ///    state for recovery to trip over.)
    /// 2. **Stick the lease**: if the machine-wide OOM lease is free,
    ///    the dying cell grabs it — modelling the worst case, death
    ///    while holding a cross-cell resource.
    /// 3. **Mark dead** so storm workers stop routing work here.
    /// 4. **Recover**: drain the spawn fast path (warm children are
    ///    real processes), then [`Kernel::evacuate`] — every process
    ///    reaped (PIDs back to the shared table), the frame magazine
    ///    drained back to the shared pool — then break the stuck lease.
    ///
    /// Afterwards [`SmpOs::check_quiesced`] holds the dead cell to the
    /// *empty* standard: zero processes, zero drawn frames.
    pub fn fail_cell(&self, c: usize, site: FaultSite) -> CellFailure {
        let mut os = self.cells[c].lock();
        let init = os.init;
        let (dying_gasp, trace) =
            fpr_faults::with_plan(FaultPlan::passive().fail_at(site, 0), || {
                os.fork(init)
            });
        let died_at_site = !trace.injected().is_empty();
        if let Ok(orphan) = dying_gasp {
            // The armed site wasn't on fork's path: the op survived its
            // own death. The child dies with the cell — evacuation
            // reaps it below.
            let _ = orphan;
        }
        debug_assert!(
            !died_at_site || dying_gasp.is_err(),
            "an injected fault must fail the dying operation"
        );
        let lease_was_stuck = self.shared.oom.try_lease(c);
        self.dead[c].store(true, Ordering::Release);
        fpr_trace::metrics::incr("smp.cell.failed");
        // Recovery. Evacuation crosses its own fault site; no plan is
        // armed on this thread anymore, so it cannot be injected here.
        let _ = os.disable_spawn_fastpath();
        let evacuated = os
            .kernel
            .evacuate()
            .expect("evacuation runs outside any armed fault plan");
        if lease_was_stuck {
            assert!(
                self.shared.oom.release_lease(c),
                "recovery breaks the dead cell's OOM lease"
            );
        }
        CellFailure {
            cell: c,
            site,
            died_at_site,
            evacuated,
            lease_was_stuck,
        }
    }

    /// Runs `f(worker_index, self)` on `threads` real OS threads and
    /// returns each worker's *virtual* elapsed cycles.
    ///
    /// Every worker's clock starts at the caller's current virtual time
    /// (so release stamps written during setup never read as future
    /// contention), and each worker flushes its thread-local metrics into
    /// the global snapshot before finishing.
    pub fn run<F>(&self, threads: usize, f: F) -> Vec<u64>
    where
        F: Fn(usize, &SmpOs) + Send + Sync,
    {
        let epoch = vclock::now();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let f = &f;
                    s.spawn(move || {
                        vclock::reset();
                        vclock::advance_to(epoch);
                        f(t, self);
                        fpr_trace::metrics::flush();
                        vclock::now() - epoch
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("smp worker panicked"))
                .collect()
        })
    }

    /// Structural violations right now: every cell's
    /// [`Kernel::check_invariants`] plus machine-wide frame conservation
    /// (every frame is free in the pool or drawn by exactly one cell).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let mut drawn = 0u64;
        for (i, cell) in self.cells.iter().enumerate() {
            let os = cell.lock();
            if let Err(errs) = os.kernel.check_invariants() {
                v.extend(errs.into_iter().map(|e| format!("cell {i}: {e}")));
            }
            if self.is_dead(i) {
                // A recovered dead cell must be *empty*, not merely
                // consistent: anything it still holds is leaked for the
                // rest of the machine's lifetime.
                let procs = os.kernel.process_count();
                if procs != 0 {
                    v.push(format!("dead cell {i}: {procs} processes not reaped"));
                }
                let held = os.kernel.phys.drawn_frames();
                if held != 0 {
                    v.push(format!("dead cell {i}: {held} frames not returned"));
                }
                if self.shared.oom.lease_holder() == Some(i) {
                    v.push(format!("dead cell {i}: OOM lease still stuck"));
                }
            }
            drawn += os.kernel.phys.drawn_frames();
        }
        let pool = &self.shared.pool;
        if drawn + pool.free_frames() != pool.total_frames() {
            v.push(format!(
                "frame conservation: {} drawn + {} pool-free != {} total",
                drawn,
                pool.free_frames(),
                pool.total_frames()
            ));
        }
        v
    }

    /// Quiesce check for workloads that destroyed everything they made:
    /// no structural violations, and every *surviving* cell back at its
    /// boot baseline (no leaked frames, PIDs, descriptions, pipes or
    /// commit). Dead cells are instead held to the empty standard
    /// enforced by [`SmpOs::violations`] — a fail-stopped cell can never
    /// return to baseline, but it must hold nothing at all.
    ///
    /// # Panics
    ///
    /// Panics with the full violation list otherwise.
    pub fn check_quiesced(&self) {
        let v = self.violations();
        assert!(
            v.is_empty(),
            "smp invariants violated at quiesce:\n  {}",
            v.join("\n  ")
        );
        for (i, cell) in self.cells.iter().enumerate() {
            if self.is_dead(i) {
                continue;
            }
            let os = cell.lock();
            if let Err(errs) = os.kernel.leak_check(&self.baselines[i]) {
                panic!("cell {i} leaked:\n  {}", errs.join("\n  "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_api::SpawnAttrs;

    #[test]
    fn cells_boot_and_quiesce_clean() {
        let smp = SmpOs::boot(OsConfig::default(), 2);
        assert_eq!(smp.ncells(), 2);
        assert!(smp.violations().is_empty());
        smp.check_quiesced();
    }

    #[test]
    fn workers_create_and_destroy_concurrently() {
        let smp = SmpOs::boot(OsConfig::default(), 4);
        let elapsed = smp.run(4, |t, smp| {
            let mut os = smp.cell(t).lock();
            let init = os.init;
            for _ in 0..8 {
                let c = os.fork(init).expect("fork");
                os.kernel.exit(c, 0).expect("exit");
                os.kernel.waitpid(init, Some(c)).expect("reap");
            }
        });
        assert_eq!(elapsed.len(), 4);
        assert!(elapsed.iter().all(|&e| e > 0), "workers did virtual work");
        smp.check_quiesced();
    }

    #[test]
    fn failed_cell_recovers_to_empty_and_survivors_to_baseline() {
        let smp = SmpOs::boot(OsConfig::default(), 3);
        // Give the doomed cell something to lose: live children, a warm
        // pool, resident memory.
        {
            let mut os = smp.cell(0).lock();
            let init = os.init;
            os.enable_spawn_fastpath().unwrap();
            os.pool_prefill("/bin/sh", 2).unwrap();
            for _ in 0..3 {
                os.fork(init).unwrap();
            }
            assert!(os.kernel.phys.drawn_frames() > 0);
        }
        let shared_live_before = smp.shared.pids.live();

        let f = smp.fail_cell(0, fpr_faults::FaultSite::PidAlloc);
        assert_eq!(f.cell, 0);
        assert!(f.died_at_site, "every fork crosses pid_alloc");
        assert!(f.evacuated >= 4, "init + 3 children at least: {f:?}");
        assert!(f.lease_was_stuck, "the lease was free, so the dying cell stuck it");
        assert!(smp.is_dead(0));
        assert!(!smp.is_dead(1) && !smp.is_dead(2));
        assert_eq!(smp.live_cells(), 2);
        assert!(
            smp.shared.pids.live() < shared_live_before,
            "the dead cell's PIDs went back to the shared table"
        );
        assert_eq!(smp.shared.oom.lease_holder(), None, "no stuck lease");

        // Survivors keep working after the failure…
        let mut os = smp.cell(1).lock();
        let init = os.init;
        let c = os.fork(init).unwrap();
        os.kernel.exit(c, 0).unwrap();
        os.kernel.waitpid(init, Some(c)).unwrap();
        drop(os);
        // …and the machine quiesces clean at N−1.
        smp.check_quiesced();
    }

    #[test]
    fn fail_cell_at_an_uncrossed_site_still_fail_stops_clean() {
        let smp = SmpOs::boot(OsConfig::default(), 2);
        // fork never touches the evacuation site, so the dying gasp
        // succeeds — the cell must die (and clean up the gasp's child)
        // all the same.
        let f = smp.fail_cell(1, fpr_faults::FaultSite::CellEvacuate);
        assert!(!f.died_at_site);
        assert!(f.evacuated >= 2, "init plus the dying gasp's child");
        assert!(smp.is_dead(1));
        smp.check_quiesced();
    }

    #[test]
    fn workers_sharing_one_cell_serialize() {
        let smp = SmpOs::boot(OsConfig::default(), 1);
        let solo = smp.run(1, |_, smp| {
            let mut os = smp.cell(0).lock();
            let init = os.init;
            for _ in 0..8 {
                let c = os.spawn(init, "/bin/sh", &[], &SpawnAttrs::default()).expect("spawn");
                os.kernel.exit(c, 0).expect("exit");
                os.kernel.waitpid(init, Some(c)).expect("reap");
            }
        });
        // Four workers hammering the same cell: the slowest worker's
        // virtual time covers (almost) all the work, because every op
        // holds the one mm lock.
        let four = smp.run(4, |_, smp| {
            for _ in 0..8 {
                let mut os = smp.cell(0).lock();
                let init = os.init;
                let c = os.spawn(init, "/bin/sh", &[], &SpawnAttrs::default()).expect("spawn");
                os.kernel.exit(c, 0).expect("exit");
                os.kernel.waitpid(init, Some(c)).expect("reap");
            }
        });
        let wall_solo = solo.iter().max().copied().unwrap();
        let wall_four = four.iter().max().copied().unwrap();
        assert!(
            wall_four > wall_solo * 3,
            "4 workers on one mm lock must serialize: {wall_four} vs {wall_solo}"
        );
        smp.check_quiesced();
    }
}
