//! Seeded property test for the memory-pressure subsystem.
//!
//! Random interleavings of alloc / free / spawn / fork / reclaim must:
//!
//! 1. keep [`Kernel::check_invariants`] green after *every* step;
//! 2. leak nothing on failed steps — a failed operation leaves the
//!    kernel at its pre-op baseline, unless a reclaim pass ran inside
//!    it (reclaim legitimately frees cached state, so there the check
//!    weakens to "resource counts only went *down*");
//! 3. tear down to the post-boot baseline exactly (full-run leak check);
//! 4. with the fast path toggled off, replay byte-identically to a
//!    world that never had it (same results, same cycle totals).
//!
//! The workspace builds without proptest, so this is a hand-rolled
//! generator over `fpr_rng` with fixed seeds: failures reproduce.

use forkroad_core::os::{Os, OsConfig};
use fpr_api::SpawnAttrs;
use fpr_kernel::{Errno, MachineConfig, Pid};
use fpr_mem::{OvercommitPolicy, Prot, Share, Vpn};
use fpr_rng::Rng;
use fpr_trace::ProcessShape;

const STEPS: usize = 60;
const FRAMES: u64 = 2048;

fn boot() -> Os {
    Os::boot(OsConfig {
        machine: MachineConfig {
            frames: FRAMES,
            overcommit: OvercommitPolicy::Always,
            ..MachineConfig::default()
        },
        ..Default::default()
    })
}

/// One process the sequence owns, with the regions it mapped.
struct Actor {
    pid: Pid,
    regions: Vec<(Vpn, u64)>,
}

/// Drives one random sequence. `fastpath` gates the pool-prefill arm of
/// the reclaim op (the parity worlds have no fast path to prefill).
/// Returns a step-by-step trace of (what ran, what it returned, cycle
/// total afterwards) for byte-identity comparison.
fn drive(os: &mut Os, seed: u64, fastpath: bool, checked: bool) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed);
    let root = os
        .make_parent(ProcessShape::with_heap(16))
        .expect("root fits");
    let mut actors = vec![Actor {
        pid: root,
        regions: vec![],
    }];
    let mut trace = Vec::with_capacity(STEPS);

    for step in 0..STEPS {
        let pre = os.kernel.baseline();
        let pre_passes = os.kernel.reclaim_stats().passes;
        let op = rng.gen_below(6);
        let desc: String = match op {
            // alloc: map a fresh region on a random actor and fault in
            // a prefix of it.
            0 => {
                let a = rng.gen_index(actors.len());
                let pages = 1 + rng.gen_below(16);
                match os.kernel.mmap_anon(actors[a].pid, pages, Prot::RW, Share::Private) {
                    Ok(base) => {
                        let touch = rng.gen_below(pages + 1).min(8);
                        let mut touched = 0;
                        for i in 0..touch {
                            match os.kernel.write_mem(actors[a].pid, base.add(i), step as u64) {
                                Ok(_) => touched += 1,
                                Err(Errno::Enomem) => break,
                                Err(e) => panic!("touch failed: {e}"),
                            }
                        }
                        actors[a].regions.push((base, pages));
                        format!("alloc[{a}] {pages}p touched {touched}")
                    }
                    Err(e) => format!("alloc[{a}] failed {e}"),
                }
            }
            // free: unmap a random previously mapped region.
            1 => {
                let candidates: Vec<usize> = (0..actors.len())
                    .filter(|&i| !actors[i].regions.is_empty())
                    .collect();
                if candidates.is_empty() {
                    "free: nothing mapped".into()
                } else {
                    let a = candidates[rng.gen_index(candidates.len())];
                    let r = rng.gen_index(actors[a].regions.len());
                    let (base, pages) = actors[a].regions.remove(r);
                    let freed = os
                        .kernel
                        .munmap(actors[a].pid, base, pages)
                        .expect("munmap of a live region");
                    format!("free[{a}] {pages}p -> {freed} frames")
                }
            }
            // spawn a fresh child of root.
            2 => match os.spawn(root, "/bin/tool", &[], &SpawnAttrs::default()) {
                Ok(c) => {
                    actors.push(Actor {
                        pid: c,
                        regions: vec![],
                    });
                    format!("spawn ok ({} actors)", actors.len())
                }
                Err(e) => format!("spawn failed {e}"),
            },
            // fork root (children of children would complicate reaping
            // without adding coverage: the clone path is the same).
            3 => match os.fork(root) {
                Ok(c) => {
                    actors.push(Actor {
                        pid: c,
                        regions: vec![],
                    });
                    format!("fork ok ({} actors)", actors.len())
                }
                Err(e) => format!("fork failed {e}"),
            },
            // reclaim: run a balance pass; with the fast path on, also
            // occasionally restock the pool so there is something to
            // reclaim next time.
            4 => {
                let freed = os.kernel.balance_pressure();
                if fastpath && rng.gen_bool(0.5) {
                    let r = os.pool_prefill("/bin/tool", 1);
                    format!("reclaim {freed} + prefill {r:?}")
                } else {
                    format!("reclaim {freed}")
                }
            }
            // exit: retire a random non-root actor.
            _ => {
                if actors.len() == 1 {
                    "exit: only root left".into()
                } else {
                    let a = 1 + rng.gen_index(actors.len() - 1);
                    let victim = actors.remove(a);
                    os.kernel.exit(victim.pid, 0).expect("exit");
                    os.kernel.waitpid(root, Some(victim.pid)).expect("reap");
                    format!("exit actor {}", victim.pid.0)
                }
            }
        };

        if checked {
            os.kernel
                .check_invariants()
                .unwrap_or_else(|v| panic!("step {step} ({desc}): invariants broken: {v:?}"));
            if desc.contains("failed") {
                if os.kernel.reclaim_stats().passes == pre_passes {
                    os.kernel.leak_check(&pre).unwrap_or_else(|v| {
                        panic!("step {step} ({desc}): failed op leaked: {v:?}")
                    });
                } else {
                    // A reclaim pass ran inside the failing op: cached
                    // state was legitimately torn down, so counts may
                    // shrink — but never grow.
                    let now = os.kernel.baseline();
                    assert!(
                        now.used_frames <= pre.used_frames
                            && now.committed <= pre.committed,
                        "step {step} ({desc}): failed op grew resources"
                    );
                }
            }
        }
        trace.push(format!("{step}:{desc}@{}", os.kernel.cycles.total()));
    }

    // Teardown: retire every actor (root last) so the caller can leak-
    // check against its post-boot baseline.
    for a in actors.iter().skip(1) {
        os.kernel.exit(a.pid, 0).expect("exit child");
        os.kernel.waitpid(root, Some(a.pid)).expect("reap child");
    }
    os.kernel.exit(root, 0).expect("exit root");
    os.kernel.waitpid(os.init, Some(root)).expect("reap root");
    trace
}

const SWAP_STEPS: usize = 80;

fn boot_swap(slots: u64) -> Os {
    Os::boot(OsConfig {
        machine: MachineConfig {
            frames: FRAMES,
            swap_slots: slots,
            overcommit: OvercommitPolicy::Always,
            ..MachineConfig::default()
        },
        ..Default::default()
    })
}

/// One process the swap sequence owns: per region, base, size, how many
/// pages were written, and the value written.
struct SwapActor {
    pid: Pid,
    regions: Vec<(Vpn, u64, u64, u64)>,
}

/// Like [`drive`], with the swap tier in the mix: direct swap-out
/// passes, re-reads of previously written pages (swap-ins when the page
/// was evicted), forks that copy swap entries, and unmaps/exits that
/// must release slots. `call_swap` false skips the `swap_out_pass` call
/// itself while drawing the same random numbers — the byte-identity
/// test uses it to prove the call is observably absent on a swapless
/// machine.
fn drive_swap(os: &mut Os, seed: u64, call_swap: bool, checked: bool) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed);
    let root = os
        .make_parent(ProcessShape::with_heap(16))
        .expect("root fits");
    let mut actors = vec![SwapActor {
        pid: root,
        regions: vec![],
    }];
    let mut trace = Vec::with_capacity(SWAP_STEPS);

    for step in 0..SWAP_STEPS {
        let pre = os.kernel.baseline();
        let op = rng.gen_below(6);
        let desc: String = match op {
            // alloc: map a fresh region on a random actor and write a
            // prefix of it (dirty private pages are eviction candidates).
            0 => {
                let a = rng.gen_index(actors.len());
                let pages = 1 + rng.gen_below(16);
                let val = 0x5A00 + step as u64;
                match os
                    .kernel
                    .mmap_anon(actors[a].pid, pages, Prot::RW, Share::Private)
                {
                    Ok(base) => {
                        let touch = rng.gen_below(pages + 1).min(8);
                        let mut touched = 0;
                        for i in 0..touch {
                            match os.kernel.write_mem(actors[a].pid, base.add(i), val) {
                                Ok(_) => touched += 1,
                                Err(Errno::Enomem) => break,
                                Err(e) => panic!("touch failed: {e}"),
                            }
                        }
                        actors[a].regions.push((base, pages, touched, val));
                        format!("alloc[{a}] {pages}p touched {touched}")
                    }
                    Err(e) => format!("alloc[{a}] failed {e}"),
                }
            }
            // free: unmap a random region — swapped pages in it must
            // release their slots.
            1 => {
                let candidates: Vec<usize> = (0..actors.len())
                    .filter(|&i| !actors[i].regions.is_empty())
                    .collect();
                if candidates.is_empty() {
                    "free: nothing mapped".into()
                } else {
                    let a = candidates[rng.gen_index(candidates.len())];
                    let r = rng.gen_index(actors[a].regions.len());
                    let (base, pages, _, _) = actors[a].regions.remove(r);
                    let freed = os
                        .kernel
                        .munmap(actors[a].pid, base, pages)
                        .expect("munmap of a live region");
                    format!("free[{a}] {pages}p -> {freed} frames")
                }
            }
            // read-back: fault a random page of a random region — a
            // swap-in when the pass evicted it, and the value written
            // before eviction must come back exactly.
            2 => {
                let candidates: Vec<usize> = (0..actors.len())
                    .filter(|&i| !actors[i].regions.is_empty())
                    .collect();
                if candidates.is_empty() {
                    "read: nothing mapped".into()
                } else {
                    let a = candidates[rng.gen_index(candidates.len())];
                    let r = rng.gen_index(actors[a].regions.len());
                    let (base, pages, touched, val) = actors[a].regions[r];
                    let i = rng.gen_below(pages);
                    let expect = if i < touched { val } else { 0 };
                    let got = os
                        .kernel
                        .read_mem(actors[a].pid, base.add(i))
                        .expect("read of a live page");
                    assert_eq!(got, expect, "step {step}: page content changed");
                    format!("read[{a}] page {i} -> {got:#x}")
                }
            }
            // fork root: swap entries are copied by reference count.
            3 => match os.fork(root) {
                Ok(c) => {
                    actors.push(SwapActor {
                        pid: c,
                        regions: vec![],
                    });
                    format!("fork ok ({} actors)", actors.len())
                }
                Err(e) => format!("fork failed {e}"),
            },
            // swap-out: evict up to a small random target.
            4 => {
                let t = 1 + rng.gen_below(8);
                let n = if call_swap {
                    os.kernel.swap_out_pass(t).expect("uninjected pass")
                } else {
                    0
                };
                format!("swapout target {t} -> {n}")
            }
            // exit: retire a random non-root actor (its swap slots and
            // frames must all come back).
            _ => {
                if actors.len() == 1 {
                    "exit: only root left".into()
                } else {
                    let a = 1 + rng.gen_index(actors.len() - 1);
                    let victim = actors.remove(a);
                    os.kernel.exit(victim.pid, 0).expect("exit");
                    os.kernel.waitpid(root, Some(victim.pid)).expect("reap");
                    format!("exit actor {}", victim.pid.0)
                }
            }
        };

        if checked {
            os.kernel
                .check_invariants()
                .unwrap_or_else(|v| panic!("step {step} ({desc}): invariants broken: {v:?}"));
            if desc.contains("failed") {
                os.kernel
                    .leak_check(&pre)
                    .unwrap_or_else(|v| panic!("step {step} ({desc}): failed op leaked: {v:?}"));
            }
        }
        trace.push(format!("{step}:{desc}@{}", os.kernel.cycles.total()));
    }

    for a in actors.iter().skip(1) {
        os.kernel.exit(a.pid, 0).expect("exit child");
        os.kernel.waitpid(root, Some(a.pid)).expect("reap child");
    }
    os.kernel.exit(root, 0).expect("exit root");
    os.kernel.waitpid(os.init, Some(root)).expect("reap root");
    trace
}

#[test]
fn random_swap_sequences_hold_invariants_and_leak_nothing() {
    let mut total_out = 0;
    let mut total_in = 0;
    for case in 0..10u64 {
        let mut os = boot_swap(512);
        let boot_base = os.kernel.baseline();
        drive_swap(&mut os, 0xE13_000 + case, true, true);
        os.kernel
            .check_invariants()
            .unwrap_or_else(|v| panic!("case {case}: final invariants: {v:?}"));
        os.kernel
            .leak_check(&boot_base)
            .unwrap_or_else(|v| panic!("case {case}: full-run leak: {v:?}"));
        let stats = os.kernel.phys.swap().stats();
        total_out += stats.swap_outs;
        total_in += stats.swap_ins;
    }
    // The sequences genuinely exercised the tier in both directions.
    assert!(total_out > 0, "no sequence ever swapped out");
    assert!(total_in > 0, "no sequence ever swapped back in");
}

#[test]
fn disabled_swap_replays_byte_identical_to_a_swapless_world() {
    // With no slots configured, every swap entry point must be
    // observably absent: same step results, same cycle totals as a run
    // that never calls into the tier at all.
    for case in 0..6u64 {
        let seed = 0xE13_100 + case;
        let mut called = boot_swap(0);
        let called_trace = drive_swap(&mut called, seed, true, true);
        let mut skipped = boot_swap(0);
        let skipped_trace = drive_swap(&mut skipped, seed, false, true);
        assert_eq!(
            called_trace, skipped_trace,
            "case {case}: disabled swap tier was observable"
        );
        assert_eq!(
            called.kernel.cycles.total(),
            skipped.kernel.cycles.total(),
            "case {case}: cycle totals diverged"
        );
        assert_eq!(
            called.kernel.baseline(),
            skipped.kernel.baseline(),
            "case {case}: resource counts diverged"
        );
    }
}

#[test]
fn random_sequences_hold_invariants_and_leak_nothing() {
    for case in 0..10u64 {
        let mut os = boot();
        // Baseline after enabling: binding binaries to VFS backing files
        // creates inodes that persist by design (they back the images).
        os.enable_spawn_fastpath().expect("enable");
        let boot_base = os.kernel.baseline();
        os.pool_prefill("/bin/tool", 4).expect("prefill");
        drive(&mut os, 0xE12_000 + case, true, true);
        os.disable_spawn_fastpath().expect("disable");
        os.kernel
            .check_invariants()
            .unwrap_or_else(|v| panic!("case {case}: final invariants: {v:?}"));
        os.kernel
            .leak_check(&boot_base)
            .unwrap_or_else(|v| panic!("case {case}: full-run leak: {v:?}"));
    }
}

#[test]
fn toggled_off_fastpath_replays_byte_identical_to_classic() {
    for case in 0..6u64 {
        let seed = 0xE12_100 + case;
        let mut classic = boot();
        let classic_trace = drive(&mut classic, seed, false, true);

        let mut toggled = boot();
        toggled.enable_spawn_fastpath().expect("enable");
        toggled.disable_spawn_fastpath().expect("disable");
        assert!(!toggled.fastpath_enabled());
        let toggled_trace = drive(&mut toggled, seed, false, true);

        assert_eq!(
            classic_trace, toggled_trace,
            "case {case}: toggled world diverged from classic"
        );
        assert_eq!(
            classic.kernel.cycles.total(),
            toggled.kernel.cycles.total(),
            "case {case}: cycle totals diverged"
        );
        // Baselines match except inodes: the toggled world keeps the VFS
        // backing files the enable created (they back the binaries).
        let (mut c, mut t) = (classic.kernel.baseline(), toggled.kernel.baseline());
        c.inodes = 0;
        t.inodes = 0;
        assert_eq!(c, t, "case {case}: resource counts diverged");
    }
}
