//! Seeded multithread stress: N real OS threads hammer the SMP machine
//! with a random mix of fork/vfork/spawn/exec ops, then the whole
//! machine must quiesce clean — every cell's invariants hold, nothing
//! leaked, and every frame is back in the shared pool or accounted to a
//! cell. Plus the determinism regression the SMP work must not break:
//! the single-threaded E15 service figure replays byte-identical to the
//! checked-in seed results.

use forkroad_core::experiments::service;
use forkroad_core::os::OsConfig;
use forkroad_core::smp::SmpOs;
use fpr_api::SpawnAttrs;
use fpr_kernel::{MachineConfig, Pid};
use fpr_mem::OvercommitPolicy;
use fpr_rng::Rng;

const THREADS: usize = 4;
const OPS: usize = 120;
const SEED: u64 = 0xF02C_AD5E;

fn stress_machine() -> MachineConfig {
    MachineConfig {
        frames: 65_536,
        overcommit: OvercommitPolicy::Always,
        ..MachineConfig::default()
    }
}

/// One worker's random walk: mostly on its home cell, sometimes raiding
/// a neighbour's, keeping a small set of live children and reaping them
/// in random order. Everything it creates it destroys.
fn storm(worker: usize, smp: &SmpOs) {
    let mut rng = Rng::seed_from_u64(SEED.wrapping_add(worker as u64));
    // Live children per cell (a child must be reaped through the cell
    // that owns it).
    let mut live: Vec<Vec<Pid>> = vec![Vec::new(); smp.ncells()];
    for _ in 0..OPS {
        let cell = if rng.gen_bool(0.25) {
            rng.gen_index(smp.ncells())
        } else {
            worker % smp.ncells()
        };
        let mut os = smp.cell(cell).lock();
        let init = os.init;
        match rng.gen_index(5) {
            0 => {
                let c = os.fork(init).expect("fork");
                live[cell].push(c);
            }
            1 => {
                // vfork borrows the parent's space; give it back at once.
                let c = os.vfork(init).expect("vfork");
                os.kernel.exit(c, 0).expect("exit");
                os.kernel.waitpid(init, Some(c)).expect("reap");
            }
            2 => {
                let c = os
                    .spawn(init, "/bin/cat", &[], &SpawnAttrs::default())
                    .expect("spawn");
                live[cell].push(c);
            }
            3 => {
                let c = os
                    .fork_exec(init, "/bin/grep", fpr_mem::ForkMode::Cow)
                    .expect("fork_exec");
                live[cell].push(c);
            }
            _ => {
                if !live[cell].is_empty() {
                    let i = rng.gen_index(live[cell].len());
                    let c = live[cell].swap_remove(i);
                    os.kernel.exit(c, 0).expect("exit");
                    os.kernel.waitpid(init, Some(c)).expect("reap");
                }
            }
        }
        // Cap the live set so the storm churns instead of hoarding.
        while live[cell].len() > 8 {
            let i = rng.gen_index(live[cell].len());
            let c = live[cell].swap_remove(i);
            os.kernel.exit(c, 0).expect("exit");
            os.kernel.waitpid(init, Some(c)).expect("reap");
        }
    }
    // Quiesce: destroy everything this worker still owns.
    for (cell, pids) in live.into_iter().enumerate() {
        if pids.is_empty() {
            continue;
        }
        let mut os = smp.cell(cell).lock();
        let init = os.init;
        for c in pids {
            os.kernel.exit(c, 0).expect("exit");
            os.kernel.waitpid(init, Some(c)).expect("reap");
        }
    }
}

#[test]
fn seeded_multithread_storm_quiesces_clean() {
    let smp = SmpOs::boot(
        OsConfig {
            machine: stress_machine(),
            ..Default::default()
        },
        THREADS,
    );
    let elapsed = smp.run(THREADS, storm);
    assert_eq!(elapsed.len(), THREADS);
    assert!(elapsed.iter().all(|&e| e > 0), "every worker did work");
    // check_invariants + leak_check per cell, plus machine-wide frame
    // conservation — the whole point of the exercise.
    smp.check_quiesced();
}

#[test]
fn single_thread_service_replays_byte_identical_to_seed() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/fig_service.json"
    );
    let want = std::fs::read_to_string(path).expect("checked-in fig_service.json");
    let got = service::run().to_json();
    assert_eq!(
        got, want,
        "E15 must replay byte-identical to the checked-in seed figure; \
         the SMP machinery must stay inert on the single-threaded path"
    );
}
