//! E17 stress gate (wired into `make stress`): the SMP machine survives
//! concurrent fault injection on every worker thread, holds the
//! documented lock order everywhere, and recovers from a cell fail-stop
//! to a clean N−1 quiesce — all under real OS threads.
//!
//! The fine-grained shape assertions live in
//! `forkroad_core::experiments::smp_faults`; this binary reruns both
//! arms end-to-end as the release-mode stress configuration.

use forkroad_core::experiments::smp_faults::{self, THREADS};

#[test]
fn concurrent_faultsweep_and_fail_stop_gate() {
    let out = smp_faults::run();

    // Arm 1: injections happened on every thread's stream and were all
    // contained (run() already panicked otherwise via check_quiesced).
    assert!(out.sweep.injected_ops > 0, "the sweep must inject");
    assert!(
        out.sweep.sites_injected() >= 5,
        "injection must cover the creation surface, got {} sites",
        out.sweep.sites_injected()
    );
    assert_eq!(out.sweep.order_violations, 0, "lock order under injection");

    // Arm 2: fail-stop recovered — survivors quiesced clean at N−1 with
    // the dead cell empty and the OOM lease broken.
    assert_eq!(out.failstop.live_cells, THREADS - 1);
    assert!(out.failstop.failure.lease_was_stuck);
    assert!(out.failstop.ops_after_failure > 0);
    assert_eq!(out.failstop.order_violations, 0, "lock order through fail-stop");

    // No deadlock was (virtually) detected anywhere in either arm.
    assert_eq!(fpr_trace::smp::deadlocks_detected(), 0);
}
