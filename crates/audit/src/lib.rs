//! # fpr-audit — fork-safety and security auditing
//!
//! Turns the paper's qualitative warnings into checkable predicates:
//!
//! * [`fork_safety`] inspects a live process and reports exactly why a
//!   fork *right now* would deadlock (orphaned locks), corrupt output
//!   (unflushed streams), race signals, or simply cost too much;
//! * [`security`] quantifies what a child inherited that it shouldn't
//!   have — leaked descriptors, ambient privilege, and shared ASLR
//!   layouts (the zygote problem, experiment E8);
//! * [`fault_coverage`] lints the fault-injection counters: any site a
//!   workload crossed but never failed at is an untested error path
//!   (E9's premise — cleanup code that has never once run).

pub mod fault_coverage;
pub mod fork_safety;
pub mod report;
pub mod security;

pub use fault_coverage::{audit_fault_coverage, audit_sites};
pub use fork_safety::{audit_fork_safety, audit_main_thread};
pub use report::{Finding, Report, Severity};
pub use security::{audit_inheritance, zygote_entropy, ZygoteReport, MAX_LAYOUT_BITS};
