//! Fault-site coverage audit: the untested-error-path lint.
//!
//! The paper's deepest robustness complaint is not that fork *can* fail
//! partway — it is that the cleanup code for those failures never runs
//! until production. `fpr-faults` counts, per [`FaultSite`], how often a
//! site was crossed and how often a fault was actually injected there.
//! This auditor turns those counters into findings:
//!
//! * a site crossed but **never injected** is an error path the test run
//!   exercised zero times — exactly the latent-bug shape the fault sweep
//!   in `crates/api/tests/faultsweep.rs` exists to kill (`Critical`);
//! * a site never crossed at all means the workload under audit does
//!   not reach that subsystem — not a bug, but worth knowing (`Info`).
//!
//! Counters are cumulative per thread; call
//! [`fpr_faults::reset_coverage`] before the workload you want audited.

use crate::report::{Finding, Report, Severity};
use fpr_faults::{coverage, FaultSite, SiteCoverage};

/// Audits the thread's cumulative fault-site counters.
pub fn audit_fault_coverage() -> Report {
    audit_sites(&coverage())
}

/// Audits the machine-wide counters aggregated across every thread that
/// called [`fpr_faults::flush_coverage`] — the entry point for auditing
/// a multi-threaded SMP storm, where each worker's crossings land in its
/// own thread-local table. Call [`fpr_faults::reset_global_coverage`]
/// before the workload you want audited.
pub fn audit_global_fault_coverage() -> Report {
    audit_sites(&fpr_faults::global_coverage())
}

/// Audits an explicit counter snapshot (testable without thread state).
pub fn audit_sites(sites: &[(FaultSite, SiteCoverage)]) -> Report {
    let mut report = Report::new();
    for (site, cov) in sites {
        if cov.crossings > 0 && cov.injections == 0 {
            report.push(Finding::new(
                Severity::Critical,
                "UNTESTED_ERROR_PATH",
                format!(
                    "site {} crossed {} times but never failed: its cleanup \
                     path has not run",
                    site.name(),
                    cov.crossings
                ),
            ));
        } else if cov.crossings == 0 {
            report.push(Finding::new(
                Severity::Info,
                "SITE_NOT_REACHED",
                format!("site {} never crossed by this workload", site.name()),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_faults::{reset_coverage, with_plan, FaultPlan};

    fn cov(crossings: u64, injections: u64) -> SiteCoverage {
        SiteCoverage {
            crossings,
            injections,
        }
    }

    #[test]
    fn crossed_but_never_injected_is_critical() {
        let r = audit_sites(&[(FaultSite::FrameAlloc, cov(12, 0))]);
        assert_eq!(r.count(Severity::Critical), 1);
        assert!(r.findings[0].message.contains("frame_alloc"));
        assert!(!r.is_safe());
    }

    #[test]
    fn injected_sites_are_clean_and_unreached_are_info() {
        let r = audit_sites(&[
            (FaultSite::FrameAlloc, cov(12, 3)),
            (FaultSite::PidAlloc, cov(0, 0)),
        ]);
        assert_eq!(r.count(Severity::Critical), 0);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.is_safe());
    }

    #[test]
    fn smp_sites_flow_through_the_lint() {
        // The E17 sites are ordinary citizens of the lint: crossing
        // pool_refill without ever failing it is exactly the untested
        // cross-cell error path the concurrent sweep exists to kill.
        let r = audit_sites(&[
            (FaultSite::PoolRefill, cov(40, 0)),
            (FaultSite::CellEvacuate, cov(3, 1)),
        ]);
        assert_eq!(r.count(Severity::Critical), 1);
        assert!(r.findings[0].message.contains("pool_refill"));
        let r = audit_sites(&[
            (FaultSite::PoolRefill, cov(40, 2)),
            (FaultSite::CellEvacuate, cov(3, 1)),
        ]);
        assert!(r.is_safe());
    }

    #[test]
    fn global_coverage_from_worker_threads_feeds_the_audit() {
        fpr_faults::reset_global_coverage();
        // Two workers cross cell_evacuate; one of them gets injected.
        // Their thread-local counters only reach the audit through the
        // flush → global merge path.
        let w1 = std::thread::spawn(|| {
            let _ = with_plan(FaultPlan::passive(), || {
                fpr_faults::cross(FaultSite::CellEvacuate)
            });
            fpr_faults::flush_coverage();
        });
        let w2 = std::thread::spawn(|| {
            let _ = with_plan(
                FaultPlan::passive().fail_at(FaultSite::CellEvacuate, 0),
                || fpr_faults::cross(FaultSite::CellEvacuate),
            );
            fpr_faults::flush_coverage();
        });
        w1.join().unwrap();
        w2.join().unwrap();
        let r = audit_global_fault_coverage();
        assert!(
            r.findings
                .iter()
                .filter(|f| f.code == "UNTESTED_ERROR_PATH")
                .all(|f| !f.message.contains("cell_evacuate")),
            "cell_evacuate was injected on a worker thread: not untested"
        );
        assert_eq!(r.count(Severity::Info), FaultSite::ALL.len() - 1);
        fpr_faults::reset_global_coverage();
    }

    #[test]
    fn live_counters_feed_the_audit() {
        reset_coverage();
        // Cross FdAlloc twice, injecting the second crossing.
        let _ = with_plan(FaultPlan::passive(), || {
            fpr_faults::cross(FaultSite::FdAlloc)
        });
        let _ = with_plan(FaultPlan::passive().fail_at(FaultSite::FdAlloc, 0), || {
            fpr_faults::cross(FaultSite::FdAlloc)
        });
        let r = audit_fault_coverage();
        // FdAlloc was injected: no critical finding names it.
        assert!(r
            .findings
            .iter()
            .filter(|f| f.code == "UNTESTED_ERROR_PATH")
            .all(|f| !f.message.contains("fd_alloc")));
        // Every other site is merely unreached.
        assert_eq!(r.count(Severity::Info), FaultSite::ALL.len() - 1);
        reset_coverage();
    }
}
