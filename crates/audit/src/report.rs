//! Report types shared by the auditors.


/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a cost, not a correctness problem.
    Info,
    /// Will misbehave under specific conditions.
    Warning,
    /// Will deadlock, corrupt output, or leak privilege.
    Critical,
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity classification.
    pub severity: Severity,
    /// Short machine-readable code (e.g. `ORPHANED_LOCK`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(severity: Severity, code: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            severity,
            code,
            message: message.into(),
        }
    }
}

/// A bundle of findings with summary accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, most severe first.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds a finding, keeping the list sorted most-severe-first.
    pub fn push(&mut self, f: Finding) {
        self.findings.push(f);
        self.findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    }

    /// Highest severity present, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.first().map(|f| f.severity)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// True if nothing critical was found.
    pub fn is_safe(&self) -> bool {
        self.max_severity() != Some(Severity::Critical)
    }

    /// Renders the report as text lines.
    pub fn render(&self) -> String {
        if self.findings.is_empty() {
            return "no findings\n".to_string();
        }
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Critical => "CRIT",
                Severity::Warning => "WARN",
                Severity::Info => "INFO",
            };
            out.push_str(&format!("[{tag}] {}: {}\n", f.code, f.message));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_most_severe_first() {
        let mut r = Report::new();
        r.push(Finding::new(Severity::Info, "A", "a"));
        r.push(Finding::new(Severity::Critical, "B", "b"));
        r.push(Finding::new(Severity::Warning, "C", "c"));
        assert_eq!(r.findings[0].code, "B");
        assert_eq!(r.max_severity(), Some(Severity::Critical));
        assert!(!r.is_safe());
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = Report::new();
        assert!(r.is_safe());
        assert_eq!(r.max_severity(), None);
        assert_eq!(r.render(), "no findings\n");
    }

    #[test]
    fn render_contains_codes() {
        let mut r = Report::new();
        r.push(Finding::new(
            Severity::Critical,
            "ORPHANED_LOCK",
            "lock 3 stuck",
        ));
        let s = r.render();
        assert!(s.contains("[CRIT] ORPHANED_LOCK"));
        assert!(s.contains("lock 3 stuck"));
    }
}
