//! Security audits: descriptor leaks, privilege inheritance, and shared
//! ASLR layouts (the zygote problem).

use crate::report::{Finding, Report, Severity};
use fpr_exec::shared_bits;
use fpr_kernel::{KResult, Kernel, Pid};

/// Maximum comparable layout bits (4 bases × 34 bits, see
/// [`fpr_exec::shared_bits`]).
pub const MAX_LAYOUT_BITS: u32 = 4 * 34;

/// Audits what `child` inherited from `parent` that it plausibly should
/// not have.
pub fn audit_inheritance(kernel: &Kernel, parent: Pid, child: Pid) -> KResult<Report> {
    let p = kernel.process(parent)?;
    let c = kernel.process(child)?;
    let mut report = Report::new();

    // Descriptors beyond stdio that came across.
    let leaked: Vec<u32> = c
        .fds
        .iter()
        .filter(|(fd, entry)| fd.0 > 2 && p.fds.iter().any(|(_, pe)| pe.ofd == entry.ofd))
        .map(|(fd, _)| fd.0)
        .collect();
    if !leaked.is_empty() {
        report.push(Finding::new(
            Severity::Warning,
            "FD_LEAK",
            format!(
                "child shares {} non-stdio descriptor(s) with the parent: fds {:?}",
                leaked.len(),
                leaked
            ),
        ));
    }

    // Full-privilege inheritance.
    if c.cred.euid == 0 && c.cred.caps.count() > 0 {
        report.push(Finding::new(
            Severity::Warning,
            "PRIVILEGE_INHERITED",
            format!(
                "child runs as euid 0 with {} capability bit(s)",
                c.cred.caps.count()
            ),
        ));
    }

    // Shared address-space layout.
    let bits = shared_bits(&p.layout, &c.layout);
    if bits == MAX_LAYOUT_BITS {
        report.push(Finding::new(
            Severity::Critical,
            "SHARED_ASLR",
            "child shares the parent's entire address-space layout; one info-leak in either \
             defeats ASLR for both"
                .to_string(),
        ));
    } else if bits > MAX_LAYOUT_BITS / 2 {
        report.push(Finding::new(
            Severity::Warning,
            "PARTIAL_SHARED_ASLR",
            format!("child shares {bits}/{MAX_LAYOUT_BITS} layout bits with the parent"),
        ));
    }
    Ok(report)
}

/// Summary of layout diversity across a set of sibling processes.
#[derive(Debug, Clone, PartialEq)]
pub struct ZygoteReport {
    /// Number of children analysed.
    pub children: usize,
    /// Mean pairwise shared layout bits.
    pub mean_shared_bits: f64,
    /// Number of pairs sharing the complete layout.
    pub identical_pairs: usize,
    /// Effective residual entropy: layout bits *not* shared on average.
    pub effective_entropy_bits: f64,
}

/// Measures pairwise layout sharing among `pids` (e.g. all children of a
/// zygote, or all independently spawned workers).
pub fn zygote_entropy(kernel: &Kernel, pids: &[Pid]) -> KResult<ZygoteReport> {
    let layouts: Vec<_> = pids
        .iter()
        .map(|p| kernel.process(*p).map(|pr| pr.layout))
        .collect::<KResult<Vec<_>>>()?;
    let mut total = 0u64;
    let mut pairs = 0usize;
    let mut identical = 0usize;
    for i in 0..layouts.len() {
        for j in i + 1..layouts.len() {
            let bits = shared_bits(&layouts[i], &layouts[j]);
            total += bits as u64;
            pairs += 1;
            if bits == MAX_LAYOUT_BITS {
                identical += 1;
            }
        }
    }
    let mean = if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    };
    Ok(ZygoteReport {
        children: pids.len(),
        mean_shared_bits: mean,
        identical_pairs: identical,
        effective_entropy_bits: MAX_LAYOUT_BITS as f64 - mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_api::{fork, posix_spawn, SpawnAttrs};
    use fpr_exec::{AslrConfig, Image, ImageRegistry};
    use fpr_kernel::OpenFlags;

    fn world() -> (Kernel, Pid, ImageRegistry) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        (k, init, reg)
    }

    #[test]
    fn forked_child_flags_shared_aslr_and_fd_leak() {
        let (mut k, p, reg) = world();
        // Give the parent a real layout and an extra fd.
        fpr_exec::execve(&mut k, p, &reg, "/bin/tool", AslrConfig::default(), 9).unwrap();
        k.open(p, "/secret", OpenFlags::RDWR, true).unwrap();
        let c = fork(&mut k, p).unwrap();
        let r = audit_inheritance(&k, p, c).unwrap();
        assert!(r.findings.iter().any(|f| f.code == "SHARED_ASLR"));
        assert!(r.findings.iter().any(|f| f.code == "FD_LEAK"));
        assert!(!r.is_safe());
    }

    #[test]
    fn spawned_child_is_clean() {
        let (mut k, p, reg) = world();
        fpr_exec::execve(&mut k, p, &reg, "/bin/tool", AslrConfig::default(), 9).unwrap();
        k.open(p, "/secret", OpenFlags::RDWR, true).unwrap();
        // posix_spawn inherits stdio but the secret fd is closed via action.
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[fpr_api::FileAction::Close {
                fd: fpr_kernel::Fd(3),
            }],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            10,
        )
        .unwrap();
        let r = audit_inheritance(&k, p, c).unwrap();
        assert!(!r.findings.iter().any(|f| f.code == "SHARED_ASLR"));
        assert!(!r.findings.iter().any(|f| f.code == "FD_LEAK"));
    }

    #[test]
    fn zygote_children_share_everything() {
        let (mut k, p, reg) = world();
        fpr_exec::execve(&mut k, p, &reg, "/bin/tool", AslrConfig::default(), 1).unwrap();
        let children: Vec<Pid> = (0..5).map(|_| fork(&mut k, p).unwrap()).collect();
        let z = zygote_entropy(&k, &children).unwrap();
        assert_eq!(z.identical_pairs, 10, "all pairs identical");
        assert_eq!(z.mean_shared_bits, MAX_LAYOUT_BITS as f64);
        assert_eq!(z.effective_entropy_bits, 0.0);
    }

    #[test]
    fn spawned_siblings_have_entropy() {
        let (mut k, p, reg) = world();
        let children: Vec<Pid> = (0..5)
            .map(|i| {
                posix_spawn(
                    &mut k,
                    p,
                    &reg,
                    "/bin/tool",
                    &[],
                    &SpawnAttrs::default(),
                    AslrConfig::default(),
                    1000 + i,
                )
                .unwrap()
            })
            .collect();
        let z = zygote_entropy(&k, &children).unwrap();
        assert_eq!(z.identical_pairs, 0);
        assert!(
            z.effective_entropy_bits > 50.0,
            "entropy = {}",
            z.effective_entropy_bits
        );
    }

    #[test]
    fn zygote_entropy_degenerate_cases() {
        let (k, p, _) = world();
        let z = zygote_entropy(&k, &[]).unwrap();
        assert_eq!(z.children, 0);
        assert_eq!(z.mean_shared_bits, 0.0);
        let z1 = zygote_entropy(&k, &[p]).unwrap();
        assert_eq!(z1.identical_pairs, 0);
    }
}
