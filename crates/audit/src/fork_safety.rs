//! Static fork-safety audit of a live process.
//!
//! Answers "is it safe for this process to call fork right now?" by
//! inspecting exactly the state the paper identifies: other threads and
//! the locks they hold (deadlock), unflushed user buffers (duplicated
//! output), pending signals, mapping policy, and the sheer size of what
//! would be copied. The E5 experiment validates that the auditor has no
//! false negatives against actual post-fork deadlocks.

use crate::report::{Finding, Report, Severity};
use fpr_kernel::{KResult, Kernel, Pid, Tid};

/// Audits whether `pid` (forking from `calling_tid`) can fork safely.
pub fn audit_fork_safety(kernel: &Kernel, pid: Pid, calling_tid: Tid) -> KResult<Report> {
    let p = kernel.process(pid)?;
    let mut report = Report::new();

    // 1. Locks held by threads that will not exist in the child. A lock
    //    covered by a pthread_atfork registration is acquired by the
    //    forking thread before the snapshot, so it is downgraded to a
    //    blocking-cost warning; an *uncovered* lock is a guaranteed
    //    child deadlock.
    let covered = p.atfork.covered_locks();
    for lock in p.locks.orphaned_after_fork(calling_tid) {
        if covered.contains(&lock.id) {
            report.push(Finding::new(
                Severity::Warning,
                "ATFORK_COVERED_LOCK",
                format!(
                    "lock {} (name-id {}) is held by another thread but covered by an atfork \
                     handler: fork will block until the owner releases it",
                    lock.id.0, lock.name_id
                ),
            ));
        } else {
            report.push(Finding::new(
                Severity::Critical,
                "ORPHANED_LOCK",
                format!(
                    "lock {} (name-id {}) is held by thread {:?}, which will not exist in the \
                     child; any child acquire deadlocks permanently",
                    lock.id.0, lock.name_id, lock.owner
                ),
            ));
        }
    }

    // 2. Other runnable threads at all: even without held locks, they may
    //    be mid-critical-section in state the snapshot captures.
    let others = p.threads.iter().filter(|t| t.tid != calling_tid).count();
    if others > 0 {
        report.push(Finding::new(
            Severity::Warning,
            "MULTITHREADED_PARENT",
            format!(
                "{others} other thread(s) exist; the child snapshots their memory mid-flight \
                 and only async-signal-safe operations are sound before exec"
            ),
        ));
    }

    // 3. Unflushed buffered output: will be emitted twice.
    let pending = p.unflushed_bytes();
    if pending > 0 {
        report.push(Finding::new(
            Severity::Warning,
            "UNFLUSHED_STREAMS",
            format!(
                "{pending} buffered byte(s) will be duplicated into the child and flushed twice"
            ),
        ));
    }

    // 4. Blocked-pending signals: the child clears pending, so a signal
    //    accepted before fork may be acted on only in the parent — or the
    //    fork races delivery.
    let pending_sigs = fpr_kernel::signal::ALL_SIGS
        .iter()
        .filter(|s| p.signals.is_pending(**s))
        .count();
    if pending_sigs > 0 {
        report.push(Finding::new(
            Severity::Info,
            "PENDING_SIGNALS",
            format!("{pending_sigs} signal(s) pending at fork time are not inherited"),
        ));
    }

    // 5. Copy cost: the O(parent) price.
    let resident = p.aspace.resident_pages();
    let vmas = p.aspace.vma_count();
    if resident > 0 {
        let cost = kernel.phys.cost();
        let est = resident * cost.pte_copy + vmas as u64 * cost.vma_clone;
        report.push(Finding::new(
            Severity::Info,
            "COPY_COST",
            format!(
                "fork will copy {resident} PTE(s) across {vmas} VMA(s): ≥{est} cycles before \
                 any COW fault"
            ),
        ));
    }

    // 6. Commit pressure: will the charge even fit?
    let charge = p.aspace.commit_pages();
    if charge > kernel.phys.free_frames() {
        report.push(Finding::new(
            Severity::Warning,
            "OVERCOMMIT_RISK",
            format!(
                "child commit charge {charge} pages exceeds {} free frames; fork relies on \
                 overcommit and risks an OOM kill at COW time",
                kernel.phys.free_frames()
            ),
        ));
    }
    Ok(report)
}

/// Convenience: audit from the main thread.
pub fn audit_main_thread(kernel: &Kernel, pid: Pid) -> KResult<Report> {
    let tid = kernel.process(pid)?.main_tid();
    audit_fork_safety(kernel, pid, tid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_kernel::{BufMode, Sig, STDOUT};
    use fpr_mem::{Prot, Share};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn clean_single_thread_process_is_safe() {
        let (k, p) = boot();
        let r = audit_main_thread(&k, p).unwrap();
        assert!(r.is_safe());
        assert_eq!(r.count(Severity::Critical), 0);
    }

    #[test]
    fn orphaned_lock_is_critical() {
        let (mut k, p) = boot();
        let lock = k
            .register_lock(p, fpr_kernel::sync::names::MALLOC_ARENA)
            .unwrap();
        let other = k.spawn_thread(p).unwrap();
        k.lock_acquire(p, other, lock).unwrap();
        let r = audit_main_thread(&k, p).unwrap();
        assert!(!r.is_safe());
        assert!(r.findings.iter().any(|f| f.code == "ORPHANED_LOCK"));
        assert!(r.findings.iter().any(|f| f.code == "MULTITHREADED_PARENT"));
    }

    #[test]
    fn lock_held_by_caller_is_fine() {
        let (mut k, p) = boot();
        let lock = k.register_lock(p, fpr_kernel::sync::names::APP).unwrap();
        let main = k.process(p).unwrap().main_tid();
        k.lock_acquire(p, main, lock).unwrap();
        let r = audit_main_thread(&k, p).unwrap();
        assert!(r.is_safe());
    }

    #[test]
    fn unflushed_stream_warns() {
        let (mut k, p) = boot();
        let s = k.stream_open(p, STDOUT, BufMode::FullyBuffered).unwrap();
        k.stream_write(p, s, b"pending!").unwrap();
        let r = audit_main_thread(&k, p).unwrap();
        let f = r
            .findings
            .iter()
            .find(|f| f.code == "UNFLUSHED_STREAMS")
            .unwrap();
        assert_eq!(f.severity, Severity::Warning);
        assert!(f.message.contains("8 buffered"));
    }

    #[test]
    fn pending_signal_is_info() {
        let (mut k, p) = boot();
        k.sigprocmask(p, Sig::Usr1, true).unwrap();
        k.process_mut(p).unwrap().signals.raise(Sig::Usr1);
        let r = audit_main_thread(&k, p).unwrap();
        assert!(r.findings.iter().any(|f| f.code == "PENDING_SIGNALS"));
        assert!(r.is_safe());
    }

    #[test]
    fn copy_cost_reported_for_big_process() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 128, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 128).unwrap();
        let r = audit_main_thread(&k, p).unwrap();
        let f = r.findings.iter().find(|f| f.code == "COPY_COST").unwrap();
        assert!(f.message.contains("128 PTE(s)"));
    }

    #[test]
    fn overcommit_risk_when_ram_tight() {
        let mut k = Kernel::new(fpr_kernel::MachineConfig {
            frames: 64,
            overcommit: fpr_mem::OvercommitPolicy::Always,
            ..Default::default()
        });
        let p = k.create_init("init").unwrap();
        let base = k.mmap_anon(p, 48, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 48).unwrap();
        let r = audit_main_thread(&k, p).unwrap();
        assert!(r.findings.iter().any(|f| f.code == "OVERCOMMIT_RISK"));
    }
}
