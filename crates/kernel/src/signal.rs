//! Signals: dispositions, pending sets, masks, and delivery.
//!
//! Fork copies the parent's signal dispositions and blocked mask but clears
//! the pending set; exec resets caught signals to their defaults while
//! keeping ignored ones ignored. Both rules are POSIX special cases the
//! paper cites, and both are exercised by the API tests.


/// Signal numbers (a practical subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sig {
    /// Hangup.
    Hup,
    /// Interrupt.
    Int,
    /// Quit.
    Quit,
    /// Kill (cannot be caught or ignored).
    Kill,
    /// Segmentation violation.
    Segv,
    /// Broken pipe.
    Pipe,
    /// Alarm clock.
    Alrm,
    /// Termination.
    Term,
    /// Child status changed.
    Chld,
    /// Continue.
    Cont,
    /// Stop (cannot be caught or ignored).
    Stop,
    /// User-defined 1.
    Usr1,
    /// User-defined 2.
    Usr2,
}

/// All modelled signals, in numbering order.
pub const ALL_SIGS: [Sig; 13] = [
    Sig::Hup,
    Sig::Int,
    Sig::Quit,
    Sig::Kill,
    Sig::Segv,
    Sig::Pipe,
    Sig::Alrm,
    Sig::Term,
    Sig::Chld,
    Sig::Cont,
    Sig::Stop,
    Sig::Usr1,
    Sig::Usr2,
];

impl Sig {
    /// Index into dispositions/masks.
    pub fn index(self) -> usize {
        ALL_SIGS
            .iter()
            .position(|s| *s == self)
            .expect("signal in ALL_SIGS")
    }

    /// True for signals whose disposition cannot be changed.
    pub fn unblockable(self) -> bool {
        matches!(self, Sig::Kill | Sig::Stop)
    }

    /// Default action when disposition is `Default`.
    pub fn default_action(self) -> DefaultAction {
        match self {
            Sig::Chld | Sig::Cont => DefaultAction::Ignore,
            Sig::Stop => DefaultAction::Stop,
            _ => DefaultAction::Terminate,
        }
    }
}

/// What the default disposition does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefaultAction {
    /// Terminate the process.
    Terminate,
    /// Ignore the signal.
    Ignore,
    /// Stop the process.
    Stop,
}

/// A registered handler, identified by a token (the simulator does not
/// execute user code; tests assert on tokens).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerId(pub u64);

/// Disposition of one signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Default action.
    Default,
    /// Ignore.
    Ignore,
    /// User handler.
    Handler(HandlerId),
}

/// Per-process signal state.
#[derive(Debug, Clone)]
pub struct SignalState {
    dispositions: [Disposition; ALL_SIGS.len()],
    /// Bitmask of pending signals.
    pending: u32,
    /// Bitmask of blocked signals.
    blocked: u32,
}

impl Default for SignalState {
    fn default() -> Self {
        SignalState {
            dispositions: [Disposition::Default; ALL_SIGS.len()],
            pending: 0,
            blocked: 0,
        }
    }
}

impl SignalState {
    /// Fresh state with all defaults.
    pub fn new() -> SignalState {
        SignalState::default()
    }

    /// Reads a disposition.
    pub fn disposition(&self, sig: Sig) -> Disposition {
        self.dispositions[sig.index()]
    }

    /// Sets a disposition (`sigaction`). Ignored for unblockable signals.
    pub fn set_disposition(&mut self, sig: Sig, d: Disposition) {
        if !sig.unblockable() {
            self.dispositions[sig.index()] = d;
        }
    }

    /// Marks a signal pending.
    pub fn raise(&mut self, sig: Sig) {
        self.pending |= 1 << sig.index();
    }

    /// True if `sig` is pending.
    pub fn is_pending(&self, sig: Sig) -> bool {
        self.pending & (1 << sig.index()) != 0
    }

    /// Blocks or unblocks a signal (`sigprocmask`). KILL/STOP stay
    /// unblockable.
    pub fn set_blocked(&mut self, sig: Sig, blocked: bool) {
        if sig.unblockable() {
            return;
        }
        if blocked {
            self.blocked |= 1 << sig.index();
        } else {
            self.blocked &= !(1 << sig.index());
        }
    }

    /// True if `sig` is blocked.
    pub fn is_blocked(&self, sig: Sig) -> bool {
        self.blocked & (1 << sig.index()) != 0
    }

    /// Takes the next deliverable (pending, unblocked) signal.
    pub fn take_deliverable(&mut self) -> Option<Sig> {
        for sig in ALL_SIGS {
            let bit = 1u32 << sig.index();
            if self.pending & bit != 0 && self.blocked & bit == 0 {
                self.pending &= !bit;
                return Some(sig);
            }
        }
        None
    }

    /// Fork semantics: dispositions and mask copied, pending cleared.
    pub fn fork_clone(&self) -> SignalState {
        fpr_trace::metrics::incr("kernel.signal_copy");
        SignalState {
            dispositions: self.dispositions,
            pending: 0,
            blocked: self.blocked,
        }
    }

    /// Exec semantics: caught handlers reset to default, ignore/default
    /// kept, mask kept, pending kept.
    pub fn exec_reset(&mut self) {
        for d in &mut self.dispositions {
            if matches!(d, Disposition::Handler(_)) {
                *d = Disposition::Default;
            }
        }
    }

    /// Number of signals with user handlers installed.
    pub fn handler_count(&self) -> usize {
        self.dispositions
            .iter()
            .filter(|d| matches!(d, Disposition::Handler(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_take_in_numbering_order() {
        let mut s = SignalState::new();
        s.raise(Sig::Term);
        s.raise(Sig::Hup);
        assert_eq!(s.take_deliverable(), Some(Sig::Hup));
        assert_eq!(s.take_deliverable(), Some(Sig::Term));
        assert_eq!(s.take_deliverable(), None);
    }

    #[test]
    fn blocked_signals_stay_pending() {
        let mut s = SignalState::new();
        s.set_blocked(Sig::Usr1, true);
        s.raise(Sig::Usr1);
        assert_eq!(s.take_deliverable(), None);
        assert!(s.is_pending(Sig::Usr1));
        s.set_blocked(Sig::Usr1, false);
        assert_eq!(s.take_deliverable(), Some(Sig::Usr1));
    }

    #[test]
    fn kill_and_stop_are_unblockable() {
        let mut s = SignalState::new();
        s.set_blocked(Sig::Kill, true);
        assert!(!s.is_blocked(Sig::Kill));
        s.set_disposition(Sig::Kill, Disposition::Ignore);
        assert_eq!(s.disposition(Sig::Kill), Disposition::Default);
        s.set_disposition(Sig::Stop, Disposition::Handler(HandlerId(1)));
        assert_eq!(s.disposition(Sig::Stop), Disposition::Default);
    }

    #[test]
    fn fork_clone_copies_dispositions_clears_pending() {
        let mut s = SignalState::new();
        s.set_disposition(Sig::Int, Disposition::Handler(HandlerId(7)));
        s.set_blocked(Sig::Usr2, true);
        s.raise(Sig::Term);
        let c = s.fork_clone();
        assert_eq!(c.disposition(Sig::Int), Disposition::Handler(HandlerId(7)));
        assert!(c.is_blocked(Sig::Usr2));
        assert!(
            !c.is_pending(Sig::Term),
            "pending set must not be inherited"
        );
    }

    #[test]
    fn exec_reset_drops_handlers_keeps_ignore() {
        let mut s = SignalState::new();
        s.set_disposition(Sig::Int, Disposition::Handler(HandlerId(7)));
        s.set_disposition(Sig::Hup, Disposition::Ignore);
        s.exec_reset();
        assert_eq!(s.disposition(Sig::Int), Disposition::Default);
        assert_eq!(s.disposition(Sig::Hup), Disposition::Ignore);
        assert_eq!(s.handler_count(), 0);
    }

    #[test]
    fn default_actions() {
        assert_eq!(Sig::Chld.default_action(), DefaultAction::Ignore);
        assert_eq!(Sig::Term.default_action(), DefaultAction::Terminate);
        assert_eq!(Sig::Stop.default_action(), DefaultAction::Stop);
    }
}
