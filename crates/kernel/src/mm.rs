//! Memory-policy syscalls: `madvise` and `mprotect`.
//!
//! The `MADV_DONTFORK` / `MADV_WIPEONFORK` advice values exist *only*
//! because fork copies too much by default — each is an opt-out bolted on
//! when some class of memory (DMA buffers, cryptographic state) turned
//! out to be dangerous to duplicate. Implementing them as real syscalls
//! lets the fork tests exercise the full policy matrix.

use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::pid::Pid;
use fpr_mem::{Prot, Vpn};

/// `madvise` advice values the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Madvice {
    /// Reset fork policy to the default (copy into children).
    Normal,
    /// `MADV_DONTFORK`: children do not receive this range.
    DontFork,
    /// `MADV_DOFORK`: undo `DontFork`.
    DoFork,
    /// `MADV_WIPEONFORK`: children receive the range zero-filled.
    WipeOnFork,
    /// `MADV_KEEPONFORK`: undo `WipeOnFork`.
    KeepOnFork,
    /// `MADV_DONTNEED`: discard the pages now; next access demand-fills.
    DontNeed,
}

impl Kernel {
    /// Applies `advice` to `[start, start+pages)` of `pid`.
    pub fn madvise(&mut self, pid: Pid, start: Vpn, pages: u64, advice: Madvice) -> KResult<()> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        if pages == 0 {
            return Err(Errno::Einval);
        }
        let owner = self.space_owner(pid)?;
        match advice {
            Madvice::DontNeed => {
                let cpus = self.cpus_running(owner);
                let Kernel {
                    phys,
                    cycles,
                    tlb,
                    procs,
                    ..
                } = self;
                let p = procs.get_mut(&owner).ok_or(Errno::Esrch)?;
                p.aspace
                    .discard(start, pages, phys, cycles, tlb, cpus)
                    .map(|_| ())
                    .map_err(Errno::from)
            }
            _ => {
                let p = self.procs.get_mut(&owner).ok_or(Errno::Esrch)?;
                p.aspace
                    .set_fork_policy(start, pages, |fp| match advice {
                        Madvice::Normal => {
                            fp.dont_fork = false;
                            fp.wipe_on_fork = false;
                        }
                        Madvice::DontFork => fp.dont_fork = true,
                        Madvice::DoFork => fp.dont_fork = false,
                        Madvice::WipeOnFork => fp.wipe_on_fork = true,
                        Madvice::KeepOnFork => fp.wipe_on_fork = false,
                        Madvice::DontNeed => unreachable!("handled above"),
                    })
                    .map_err(Errno::from)
            }
        }
    }

    /// Changes the protection of `[start, start+pages)` of `pid`.
    pub fn mprotect(&mut self, pid: Pid, start: Vpn, pages: u64, prot: Prot) -> KResult<()> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let owner = self.space_owner(pid)?;
        let cpus = self.cpus_running(owner);
        let Kernel {
            phys,
            cycles,
            tlb,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&owner).ok_or(Errno::Esrch)?;
        p.aspace
            .mprotect(start, pages, prot, cycles, phys, tlb, cpus)
            .map_err(Errno::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_mem::Share;

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn thp_huge_aligns_block_sized_private_mappings() {
        let mut k = Kernel::new(crate::kernel::MachineConfig {
            thp: true,
            ..Default::default()
        });
        let p = k.create_init("init").unwrap();
        // A small mapping first knocks the search cursor off alignment.
        let small = k.mmap_anon(p, 3, Prot::RW, Share::Private).unwrap();
        let big = k.mmap_anon(p, 512, Prot::RW, Share::Private).unwrap();
        assert_eq!(
            big.0 % fpr_mem::HUGE_PAGES,
            0,
            "thp_get_unmapped_area: block-sized mapping starts huge-aligned"
        );
        assert!(big.0 >= small.0 + 3);
        // Sub-block mappings are packed as usual, no alignment gap.
        let tail = k.mmap_anon(p, 4, Prot::RW, Share::Private).unwrap();
        assert_eq!(tail.0, small.0 + 3);

        // The THP-off machine keeps the historical packed placement.
        let (mut k2, p2) = boot();
        let small2 = k2.mmap_anon(p2, 3, Prot::RW, Share::Private).unwrap();
        let big2 = k2.mmap_anon(p2, 512, Prot::RW, Share::Private).unwrap();
        assert_eq!(big2.0, small2.0 + 3, "off: no alignment gap");
    }

    #[test]
    fn dontneed_discards_and_refills_zero() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 8, Prot::RW, Share::Private).unwrap();
        k.write_mem(p, base.add(2), 77).unwrap();
        assert_eq!(k.process(p).unwrap().resident_pages(), 1);
        k.madvise(p, base, 8, Madvice::DontNeed).unwrap();
        assert_eq!(k.process(p).unwrap().resident_pages(), 0);
        assert_eq!(k.phys.used_frames(), 0);
        assert_eq!(
            k.read_mem(p, base.add(2)),
            Ok(0),
            "discarded anon refills zero"
        );
    }

    #[test]
    fn dontfork_range_absent_in_child() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 8, Prot::RW, Share::Private).unwrap();
        k.write_mem(p, base, 5).unwrap();
        k.write_mem(p, base.add(4), 6).unwrap();
        k.madvise(p, base.add(4), 4, Madvice::DontFork).unwrap();
        let c = fpr_test_fork(&mut k, p);
        assert_eq!(k.read_mem(c, base), Ok(5), "normal half copied");
        assert_eq!(
            k.read_mem(c, base.add(4)),
            Err(Errno::Efault),
            "DONTFORK half absent"
        );
        assert_eq!(k.read_mem(p, base.add(4)), Ok(6), "parent keeps it");
    }

    #[test]
    fn wipeonfork_range_zeroed_in_child() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 4, Prot::RW, Share::Private).unwrap();
        k.write_mem(p, base, SECRET).unwrap();
        k.madvise(p, base, 4, Madvice::WipeOnFork).unwrap();
        let c = fpr_test_fork(&mut k, p);
        assert_eq!(k.read_mem(c, base), Ok(0), "wiped in child");
        assert_eq!(k.read_mem(p, base), Ok(SECRET), "intact in parent");
    }

    #[test]
    fn advice_is_reversible() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 4, Prot::RW, Share::Private).unwrap();
        k.write_mem(p, base, 3).unwrap();
        k.madvise(p, base, 4, Madvice::DontFork).unwrap();
        k.madvise(p, base, 4, Madvice::DoFork).unwrap();
        let c = fpr_test_fork(&mut k, p);
        assert_eq!(k.read_mem(c, base), Ok(3));
    }

    #[test]
    fn mprotect_revokes_write() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 4, Prot::RW, Share::Private).unwrap();
        k.write_mem(p, base, 1).unwrap();
        k.mprotect(p, base, 4, Prot::R).unwrap();
        assert_eq!(k.write_mem(p, base, 2), Err(Errno::Efault));
        assert_eq!(k.read_mem(p, base), Ok(1));
        k.mprotect(p, base, 4, Prot::RW).unwrap();
        assert_eq!(k.write_mem(p, base, 2).map(|_| ()), Ok(()));
    }

    #[test]
    fn zero_length_advice_is_einval() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 4, Prot::RW, Share::Private).unwrap();
        assert_eq!(k.madvise(p, base, 0, Madvice::DontFork), Err(Errno::Einval));
    }

    /// Minimal in-crate fork stand-in: duplicates the address space only
    /// (the full fork lives in `fpr-api`, which depends on this crate).
    fn fpr_test_fork(k: &mut Kernel, parent: Pid) -> Pid {
        let child = k.allocate_process(parent, "child").unwrap();
        let space = k
            .clone_address_space(parent, fpr_mem::ForkMode::Cow)
            .unwrap();
        k.process_mut(child).unwrap().aspace = space;
        child
    }

    const SECRET: u64 = 0xdead_beef;
}
