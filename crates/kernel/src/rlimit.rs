//! Per-process resource limits (`setrlimit`-style).


/// A single limit: soft (enforced) and hard (ceiling for raising soft).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rlimit {
    /// Currently enforced value.
    pub soft: u64,
    /// Maximum the soft limit may be raised to without privilege.
    pub hard: u64,
}

impl Rlimit {
    /// An effectively unlimited limit.
    pub const INFINITY: Rlimit = Rlimit {
        soft: u64::MAX,
        hard: u64::MAX,
    };

    /// Creates a limit with equal soft and hard values.
    pub fn both(v: u64) -> Rlimit {
        Rlimit { soft: v, hard: v }
    }
}

/// The resources the simulator enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Maximum simultaneous processes per real user (`RLIMIT_NPROC`) —
    /// the classic fork-bomb containment knob.
    Nproc,
    /// Maximum open file descriptors (`RLIMIT_NOFILE`).
    Nofile,
    /// Maximum address-space pages (`RLIMIT_AS`, in pages here).
    AsPages,
    /// Maximum stack pages (`RLIMIT_STACK`, in pages).
    StackPages,
}

/// The full limit set of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RlimitSet {
    nproc: Rlimit,
    nofile: Rlimit,
    as_pages: Rlimit,
    stack_pages: Rlimit,
}

impl Default for RlimitSet {
    fn default() -> Self {
        RlimitSet {
            nproc: Rlimit::both(4096),
            nofile: Rlimit::both(1024),
            as_pages: Rlimit::INFINITY,
            stack_pages: Rlimit::both(2048), // 8 MiB of 4 KiB pages
        }
    }
}

impl RlimitSet {
    /// Reads a limit.
    pub fn get(&self, r: Resource) -> Rlimit {
        match r {
            Resource::Nproc => self.nproc,
            Resource::Nofile => self.nofile,
            Resource::AsPages => self.as_pages,
            Resource::StackPages => self.stack_pages,
        }
    }

    /// Sets a limit. The caller is responsible for privilege checks when
    /// raising the hard limit.
    pub fn set(&mut self, r: Resource, lim: Rlimit) {
        match r {
            Resource::Nproc => self.nproc = lim,
            Resource::Nofile => self.nofile = lim,
            Resource::AsPages => self.as_pages = lim,
            Resource::StackPages => self.stack_pages = lim,
        }
    }

    /// Returns true if `value` is within the soft limit for `r`.
    pub fn allows(&self, r: Resource, value: u64) -> bool {
        value <= self.get(r).soft
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = RlimitSet::default();
        assert!(s.allows(Resource::Nofile, 1024));
        assert!(!s.allows(Resource::Nofile, 1025));
        assert!(s.allows(Resource::AsPages, u64::MAX));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut s = RlimitSet::default();
        s.set(Resource::Nproc, Rlimit::both(10));
        assert_eq!(s.get(Resource::Nproc), Rlimit::both(10));
        assert!(!s.allows(Resource::Nproc, 11));
    }
}
