//! User-space buffered streams — fork's composition hazard made concrete.
//!
//! A `FILE*`-style stream buffers writes in process memory. Because fork
//! duplicates all of memory, any bytes sitting in the buffer at fork time
//! exist in *both* processes afterwards, and are emitted twice when each
//! process flushes (typically at exit). The paper uses this as its
//! flagship example of fork failing to compose with user-level
//! abstractions; experiment E6 measures the duplicated bytes.

use crate::fdtable::Fd;

/// Buffering discipline of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufMode {
    /// Flush on every write (`_IONBF`).
    Unbuffered,
    /// Flush on newline (`_IOLBF`).
    LineBuffered,
    /// Flush when the buffer fills (`_IOFBF`).
    FullyBuffered,
}

/// A user-space buffered output stream bound to a descriptor.
#[derive(Debug, Clone)]
pub struct UserStream {
    /// Descriptor the stream writes through.
    pub fd: Fd,
    /// Buffering discipline.
    pub mode: BufMode,
    /// Buffer capacity in bytes.
    pub capacity: usize,
    /// Bytes buffered and not yet written to the descriptor.
    buffer: Vec<u8>,
}

/// Bytes the stream wants written to its descriptor now.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlushOut(pub Vec<u8>);

impl UserStream {
    /// Creates a stream with a 4 KiB fully buffered default.
    pub fn new(fd: Fd, mode: BufMode) -> UserStream {
        UserStream {
            fd,
            mode,
            capacity: 4096,
            buffer: Vec::new(),
        }
    }

    /// Buffers `data`, returning any bytes that must be written through to
    /// the descriptor according to the buffering discipline.
    pub fn write(&mut self, data: &[u8]) -> FlushOut {
        match self.mode {
            BufMode::Unbuffered => FlushOut(data.to_vec()),
            BufMode::LineBuffered => {
                self.buffer.extend_from_slice(data);
                match self.buffer.iter().rposition(|b| *b == b'\n') {
                    Some(nl) => FlushOut(self.buffer.drain(..=nl).collect()),
                    None => self.spill_if_full(),
                }
            }
            BufMode::FullyBuffered => {
                self.buffer.extend_from_slice(data);
                self.spill_if_full()
            }
        }
    }

    fn spill_if_full(&mut self) -> FlushOut {
        if self.buffer.len() >= self.capacity {
            FlushOut(std::mem::take(&mut self.buffer))
        } else {
            FlushOut::default()
        }
    }

    /// Flushes everything buffered (called by `fflush` and at exit).
    pub fn flush(&mut self) -> FlushOut {
        FlushOut(std::mem::take(&mut self.buffer))
    }

    /// Bytes currently buffered — the data fork will duplicate.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbuffered_passes_through() {
        let mut s = UserStream::new(Fd(1), BufMode::Unbuffered);
        assert_eq!(s.write(b"abc").0, b"abc");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn line_buffered_flushes_on_newline() {
        let mut s = UserStream::new(Fd(1), BufMode::LineBuffered);
        assert_eq!(s.write(b"par").0, b"");
        assert_eq!(s.pending(), 3);
        assert_eq!(s.write(b"tial\nrest").0, b"partial\n");
        assert_eq!(s.pending(), 4);
        assert_eq!(s.flush().0, b"rest");
    }

    #[test]
    fn fully_buffered_spills_at_capacity() {
        let mut s = UserStream::new(Fd(1), BufMode::FullyBuffered);
        s.capacity = 8;
        assert_eq!(s.write(b"1234").0, b"");
        assert_eq!(s.write(b"5678").0, b"12345678");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn pending_bytes_are_the_fork_hazard() {
        let mut s = UserStream::new(Fd(1), BufMode::FullyBuffered);
        s.write(b"hello ");
        // A fork at this point duplicates 6 bytes; both copies flush at
        // exit and the output contains the prefix twice.
        assert_eq!(s.pending(), 6);
        let forked = s.clone();
        let a = s.flush().0;
        let b = forked.clone().flush().0;
        assert_eq!(a, b, "duplicated output");
    }
}
