//! Process lifecycle: signals, exit, wait, reaping, and the OOM killer.

use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::pid::Pid;
use crate::signal::{DefaultAction, Disposition, Sig};
use crate::task::{ProcState, SpaceRef};
use fpr_trace::metrics;
use std::sync::atomic::{AtomicU64, Ordering};

/// Exit status the OOM killer assigns (128 + SIGKILL).
pub const OOM_EXIT_STATUS: i32 = 137;

/// Exit status of a process killed by a fatal `SIGBUS` (128 + SIGBUS) —
/// the fate of a process whose swapped-out page the device fails to read
/// back.
pub const SIGBUS_EXIT_STATUS: i32 = 135;

/// Single-flight guard for the OOM killer on a multi-cell machine.
///
/// Memory pressure on a shared frame pool is machine-wide, so under a
/// concurrent allocation storm several cells can conclude "someone must
/// die" from the *same* exhaustion — and a naive per-cell killer would
/// shoot one victim per cell where one kill machine-wide was enough. The
/// guard is an epoch counter: a caller records the epoch when it first
/// sees `ENOMEM`, and a kill only proceeds if it can advance that exact
/// epoch ([`OomGuard::try_acquire`] is a compare-and-swap). Every
/// concurrent attempt that observed the same exhaustion loses the race
/// and retries its allocation against the memory the winner's kill just
/// freed.
///
/// On top of the epoch sits a *lease*: the cell actually executing a
/// kill holds it for the duration ([`OomGuard::try_lease`] /
/// [`OomGuard::release_lease`]). The lease exists for the failure
/// model: a cell that fail-stops mid-kill leaves it held, and recovery
/// must explicitly release it (the SMP driver's `fail_cell` does) or
/// the machine's OOM killer is wedged forever — exactly the "stuck
/// lock" class of bug E17 tests for.
#[derive(Debug, Default)]
pub struct OomGuard {
    epoch: AtomicU64,
    /// 0 = free; `cell + 1` = the cell currently executing a kill.
    owner: AtomicU64,
}

impl OomGuard {
    /// A fresh guard at epoch zero.
    pub fn new() -> OomGuard {
        OomGuard::default()
    }

    /// The current kill epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Attempts to claim the kill for `observed` — exactly one caller per
    /// epoch succeeds.
    pub fn try_acquire(&self, observed: u64) -> bool {
        self.epoch
            .compare_exchange(observed, observed + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Attempts to take the kill lease for `cell`. Fails if any cell
    /// (including a dead one) holds it.
    pub fn try_lease(&self, cell: usize) -> bool {
        self.owner
            .compare_exchange(0, cell as u64 + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Releases the lease if — and only if — `cell` holds it. Recovery
    /// calls this on behalf of a fail-stopped cell; the normal kill path
    /// calls it for itself. Returns whether anything was released.
    pub fn release_lease(&self, cell: usize) -> bool {
        self.owner
            .compare_exchange(cell as u64 + 1, 0, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The cell currently holding the kill lease, if any.
    pub fn lease_holder(&self) -> Option<usize> {
        match self.owner.load(Ordering::Acquire) {
            0 => None,
            c => Some(c as usize - 1),
        }
    }
}

/// What a guarded OOM-kill attempt did (see [`Kernel::oom_kill_guarded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OomDecision {
    /// This caller won the epoch and killed the victim.
    Killed(Pid),
    /// This caller won the epoch but every process is exempt.
    NoVictim,
    /// Pressure already cleared — someone else's kill or reclaim freed
    /// the frames; retry the allocation.
    Relieved,
    /// Another cell killed for the same observed exhaustion; retry the
    /// allocation.
    Raced,
}

impl Kernel {
    /// Installs a signal disposition (`sigaction`).
    pub fn sigaction(&mut self, pid: Pid, sig: Sig, d: Disposition) -> KResult<()> {
        if sig.unblockable() && d != Disposition::Default {
            return Err(Errno::Einval);
        }
        self.process_mut(pid)?.signals.set_disposition(sig, d);
        Ok(())
    }

    /// Blocks or unblocks a signal (`sigprocmask`).
    pub fn sigprocmask(&mut self, pid: Pid, sig: Sig, blocked: bool) -> KResult<()> {
        self.process_mut(pid)?.signals.set_blocked(sig, blocked);
        Ok(())
    }

    /// Sends `sig` to `target` and immediately runs delivery.
    pub fn kill(&mut self, target: Pid, sig: Sig) -> KResult<()> {
        self.charge_syscall();
        {
            let p = self.process_mut(target)?;
            if p.is_zombie() {
                return Ok(());
            }
            p.signals.raise(sig);
        }
        self.deliver_pending(target)
    }

    /// Delivers every deliverable pending signal of `target`:
    /// handlers are logged, defaults are applied (terminate/ignore).
    pub fn deliver_pending(&mut self, target: Pid) -> KResult<()> {
        loop {
            let (sig, disp) = {
                let p = self.process_mut(target)?;
                match p.signals.take_deliverable() {
                    None => return Ok(()),
                    Some(s) => (s, p.signals.disposition(s)),
                }
            };
            match disp {
                Disposition::Ignore => {}
                Disposition::Handler(h) => self.handler_log.push((target, h.0)),
                Disposition::Default => match sig.default_action() {
                    DefaultAction::Ignore => {}
                    DefaultAction::Stop => { /* job control not modelled further */ }
                    DefaultAction::Terminate => {
                        self.exit(target, 128 + sig.index() as i32)?;
                        return Ok(());
                    }
                },
            }
        }
    }

    /// Terminates `pid` with `status`: flushes user streams, releases
    /// descriptors and memory, reparents children to init, zombifies, and
    /// signals the parent with `SIGCHLD`.
    pub fn exit(&mut self, pid: Pid, status: i32) -> KResult<()> {
        fpr_trace::sink::span_begin("exit", "kernel", self.cycles.total());
        fpr_trace::metrics::incr("kernel.exit");
        let r = self.exit_inner(pid, status);
        fpr_trace::sink::span_end("exit", self.cycles.total());
        r
    }

    fn exit_inner(&mut self, pid: Pid, status: i32) -> KResult<()> {
        // 1. Userspace atexit: flush buffered streams (this is where
        //    fork-duplicated buffer contents become duplicated output).
        let nstreams = self.process(pid)?.streams.len();
        for s in 0..nstreams {
            let _ = self.stream_flush(pid, s);
        }

        // 2. Release descriptors.
        let entries = self.process_mut(pid)?.fds.drain();
        for e in entries {
            crate::io::release_entry(&mut self.ofds, &mut self.pipes, e)?;
        }

        // 3. Release memory (vfork borrowers do not own their space).
        let (space_ref, ppid, children, vfork_children) = {
            let p = self.process_mut(pid)?;
            (
                p.space_ref.clone(),
                p.ppid,
                std::mem::take(&mut p.children),
                std::mem::take(&mut p.vfork_children),
            )
        };
        match space_ref {
            SpaceRef::Owned => {
                let commit = {
                    let p = self.process(pid)?;
                    p.aspace.commit_pages()
                };
                let Kernel {
                    phys,
                    cycles,
                    procs,
                    ..
                } = self;
                let p = procs.get_mut(&pid).ok_or(Errno::Esrch)?;
                p.aspace.destroy(phys, cycles);
                self.commit.release(commit);
            }
            SpaceRef::BorrowedFrom(parent) => {
                // Return the borrow; the parent resumes.
                self.vfork_return(parent, pid)?;
            }
        }

        // 4. Any vfork children of the dying process lose their borrow
        //    target; they are killed too (matching Linux, where the group
        //    dies together in this pathological case).
        for c in vfork_children {
            if self.procs.contains_key(&c) {
                self.exit(c, OOM_EXIT_STATUS)?;
            }
        }

        // 5. Reparent children to init (PID 1).
        let init = Pid(1);
        for c in children {
            if let Some(cp) = self.procs.get_mut(&c) {
                cp.ppid = init;
                if let Some(ip) = self.procs.get_mut(&init) {
                    ip.children.push(c);
                }
            }
        }

        // 6. Off the run queue, cancel timers, zombify, account.
        self.sched.remove_process(pid);
        self.clear_alarms(pid);
        {
            let p = self.process_mut(pid)?;
            p.state = ProcState::Zombie(status);
            for t in &mut p.threads {
                t.state = crate::thread::ThreadState::Exited;
            }
        }
        let uid = self.process(pid)?.cred.uid;
        if let Some(c) = self.user_counts.get_mut(&uid) {
            *c = c.saturating_sub(1);
        }

        // 7. Tell the parent (or auto-reap if the parent is gone/self).
        if ppid != pid && self.procs.contains_key(&ppid) {
            let _ = self.kill(ppid, Sig::Chld);
        } else {
            self.reap(pid)?;
        }
        Ok(())
    }

    /// Removes a zombie from the table and frees its PID.
    fn reap(&mut self, pid: Pid) -> KResult<i32> {
        let p = self.procs.remove(&pid).ok_or(Errno::Esrch)?;
        let status = match p.state {
            ProcState::Zombie(s) => s,
            ProcState::Running => return Err(Errno::Ebusy),
        };
        self.free_pid(pid);
        Ok(status)
    }

    /// Waits for a child: reaps and returns `(pid, status)` of a zombie
    /// child (a specific one if `target` is given). `Ok(None)` means
    /// children exist but none has exited (the caller would block);
    /// [`Errno::Echild`] means there is nothing to wait for.
    pub fn waitpid(&mut self, parent: Pid, target: Option<Pid>) -> KResult<Option<(Pid, i32)>> {
        self.charge_syscall();
        let children = self.process(parent)?.children.clone();
        if children.is_empty() {
            return Err(Errno::Echild);
        }
        let candidates: Vec<Pid> = match target {
            Some(t) if children.contains(&t) => vec![t],
            Some(_) => return Err(Errno::Echild),
            None => children,
        };
        for c in candidates {
            let zombie = self.procs.get(&c).map(|p| p.is_zombie()).unwrap_or(false);
            if zombie {
                let status = self.reap(c)?;
                self.process_mut(parent)?.children.retain(|x| *x != c);
                return Ok(Some((c, status)));
            }
        }
        Ok(None)
    }

    /// OOM badness of one process: how much memory killing it would
    /// actually give back, in pages. `None` means the process is exempt
    /// (init, zombies, borrowed address spaces, or an `oom_score_adj` of
    /// [`crate::task::OOM_SCORE_ADJ_MIN`] — warm-pool children are parked
    /// with that so pressure reclaims them through shrinkers, never the
    /// killer).
    ///
    /// The score is *freeable* resident pages (resident minus pages whose
    /// backing frame is pinned — killing the process leaves those frames
    /// in the pinning cache) plus committed charge (an `Always`-mode hog
    /// that committed gigabytes but touched nothing is a prime victim,
    /// where resident-only scoring saw zero) plus `oom_score_adj`.
    pub fn oom_badness(&self, pid: Pid) -> Option<i64> {
        let p = self.procs.get(&pid)?;
        if p.is_zombie() || p.pid == Pid(1) || p.space_ref != SpaceRef::Owned {
            return None;
        }
        if p.oom_score_adj <= crate::task::OOM_SCORE_ADJ_MIN {
            return None;
        }
        let mut resident = 0i64;
        let mut pinned = 0i64;
        p.aspace.for_each_resident(|_vpn, pte| {
            resident += 1;
            if self.phys.pin_count(pte.pfn) > 0 {
                pinned += 1;
            }
        });
        // Swapped pages count too: killing the process frees their slots,
        // which is exactly the headroom the swap tier needs back.
        let swapped = p.aspace.swapped_pages() as i64;
        let score = (resident - pinned) + swapped + p.aspace.commit_pages() as i64 + p.oom_score_adj;
        Some(score.max(0))
    }

    /// The OOM killer, routed through the machine-wide single-flight
    /// guard when this kernel is an SMP cell. `observed_epoch` is the
    /// guard epoch the caller read ([`Kernel::oom_epoch`]) when it first
    /// hit `ENOMEM`: if another cell has killed since (the epoch moved),
    /// or pressure has already cleared, or a concurrent attempt wins the
    /// epoch race, no second process dies — the caller gets
    /// [`OomDecision::Raced`] / [`OomDecision::Relieved`] and should
    /// simply retry its allocation. Without a guard (the single-kernel
    /// machine) this is exactly [`Kernel::oom_kill`].
    pub fn oom_kill_guarded(&mut self, observed_epoch: u64) -> OomDecision {
        let Some(guard) = self.oom_guard.clone() else {
            return match self.oom_kill() {
                Some(pid) => OomDecision::Killed(pid),
                None => OomDecision::NoVictim,
            };
        };
        // Re-check under the shared pool's pressure: a kill on another
        // cell frees frames machine-wide, and killing again on stale
        // information is exactly the double-fire this guard exists to
        // prevent.
        if self.phys.pressure() < fpr_mem::PressureLevel::Critical {
            metrics::incr("kernel.oom.relieved");
            return OomDecision::Relieved;
        }
        // Take the kill lease for the duration of the kill. A held lease
        // means another cell is mid-kill (or died mid-kill and has not
        // been recovered): treat it like losing the epoch race — retry
        // the allocation rather than stacking a second victim.
        let cell = self.cell_id().unwrap_or(0);
        if !guard.try_lease(cell) {
            metrics::incr("kernel.oom.raced");
            return OomDecision::Raced;
        }
        let decision = if !guard.try_acquire(observed_epoch) {
            metrics::incr("kernel.oom.raced");
            OomDecision::Raced
        } else {
            match self.oom_kill() {
                Some(pid) => OomDecision::Killed(pid),
                None => OomDecision::NoVictim,
            }
        };
        guard.release_lease(cell);
        decision
    }

    /// This kernel's SMP cell index (its home PID shard), `None` on a
    /// single-kernel machine.
    pub fn cell_id(&self) -> Option<usize> {
        self.pid_table.as_ref().map(|&(_, cell)| cell)
    }

    /// Evacuates a fail-stopped cell: kills every process (including
    /// init), reaps every zombie, and drains the frame magazine back to
    /// the shared pool, so the machine continues degraded with nothing
    /// leaked — no frames, no PIDs, no swap slots.
    ///
    /// Crosses [`fpr_faults::FaultSite::CellEvacuate`] *before* touching
    /// anything, so an injected failure leaves the cell exactly as it
    /// was and the recovery is cleanly retryable ([`Errno::Eagain`]).
    ///
    /// Processes die youngest-PID-first, which exits every vfork
    /// borrower before its lender and leaves init (the oldest) for last;
    /// init self-reaps on exit (`ppid == pid`), and a final sweep reaps
    /// any zombie stranded by its parent's earlier death. Returns the
    /// number of processes evacuated.
    pub fn evacuate(&mut self) -> KResult<u64> {
        fpr_faults::cross(fpr_faults::FaultSite::CellEvacuate).map_err(|_| Errno::Eagain)?;
        metrics::incr("kernel.cell.evacuated");
        let mut evacuated = 0u64;
        let mut victims: Vec<Pid> = self
            .procs
            .iter()
            .filter(|(_, p)| !p.is_zombie())
            .map(|(&pid, _)| pid)
            .collect();
        victims.sort_unstable_by(|a, b| b.cmp(a));
        for pid in victims {
            // A vfork cascade may have taken this process down along
            // with an earlier victim; skip what is already dead.
            let alive = self.procs.get(&pid).map(|p| !p.is_zombie()).unwrap_or(false);
            if alive && self.exit(pid, OOM_EXIT_STATUS).is_ok() {
                evacuated += 1;
            }
        }
        // Zombies whose parent died unreaping (the parent's exit removed
        // it from the table before it could wait) are swept here.
        let stranded: Vec<Pid> = self.procs.keys().copied().collect();
        for pid in stranded {
            let _ = self.reap(pid);
        }
        // Give the cell's magazine frames back to the shared pool; after
        // the kills above this leaves the cell drawing zero frames.
        self.phys.disable_frame_cache();
        Ok(evacuated)
    }

    /// The OOM guard epoch to observe before attempting a guarded kill
    /// (0 on a single-kernel machine, where the guard is absent).
    pub fn oom_epoch(&self) -> u64 {
        self.oom_guard.as_ref().map_or(0, |g| g.epoch())
    }

    /// The OOM killer: kills the process with the highest badness (see
    /// [`Kernel::oom_badness`]). Ties break toward the largest PID — the
    /// youngest process, deterministically. Returns the victim's PID, or
    /// `None` if every process is exempt.
    pub fn oom_kill(&mut self) -> Option<Pid> {
        let victim = self
            .procs
            .keys()
            .copied()
            .filter_map(|pid| self.oom_badness(pid).map(|score| (score, pid)))
            .max_by_key(|&(score, pid)| (score, pid))?
            .1;
        if let Some(p) = self.procs.get_mut(&victim) {
            p.oom_killed = true;
        }
        self.oom_kills.push(victim);
        fpr_trace::metrics::incr("kernel.oom.kills");
        fpr_trace::sink::instant("oom_kill", "kernel", self.cycles.total());
        self.exit(victim, OOM_EXIT_STATUS).ok()?;
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdtable::STDOUT;
    use crate::signal::HandlerId;
    use crate::stdio::BufMode;
    use fpr_mem::{Prot, Share};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    fn child_of(k: &mut Kernel, parent: Pid) -> Pid {
        k.allocate_process(parent, "child").unwrap()
    }

    #[test]
    fn exit_then_wait_reaps() {
        let (mut k, init) = boot();
        let c = child_of(&mut k, init);
        k.exit(c, 3).unwrap();
        assert!(k.process(c).unwrap().is_zombie());
        let (pid, status) = k.waitpid(init, None).unwrap().unwrap();
        assert_eq!((pid, status), (c, 3));
        assert_eq!(k.process(c).err(), Some(Errno::Esrch));
        assert_eq!(k.waitpid(init, None), Err(Errno::Echild));
    }

    #[test]
    fn wait_on_running_child_would_block() {
        let (mut k, init) = boot();
        let c = child_of(&mut k, init);
        assert_eq!(k.waitpid(init, None), Ok(None));
        assert_eq!(k.waitpid(init, Some(c)), Ok(None));
        assert_eq!(k.waitpid(init, Some(Pid(999))), Err(Errno::Echild));
    }

    #[test]
    fn exit_flushes_streams_to_console() {
        let (mut k, init) = boot();
        let c = child_of(&mut k, init);
        let ofd = k
            .ofds
            .insert(crate::file::FileObject::Tty, crate::file::OpenFlags::WRONLY);
        k.process_mut(c)
            .unwrap()
            .fds
            .install(
                crate::fdtable::FdEntry {
                    ofd,
                    cloexec: false,
                },
                64,
            )
            .unwrap();
        let s = k
            .stream_open(c, crate::fdtable::Fd(0), BufMode::FullyBuffered)
            .unwrap();
        k.stream_write(c, s, b"at-exit").unwrap();
        assert!(k.console.is_empty());
        k.exit(c, 0).unwrap();
        assert_eq!(k.console, b"at-exit");
    }

    #[test]
    fn exit_releases_memory_and_commit() {
        let (mut k, init) = boot();
        let c = child_of(&mut k, init);
        let base = k.mmap_anon(c, 32, Prot::RW, Share::Private).unwrap();
        k.populate(c, base, 32).unwrap();
        assert_eq!(k.phys.used_frames(), 32);
        k.exit(c, 0).unwrap();
        assert_eq!(k.phys.used_frames(), 0);
        assert_eq!(k.commit.committed(), 0);
    }

    #[test]
    fn children_reparent_to_init() {
        let (mut k, init) = boot();
        let a = child_of(&mut k, init);
        let b = k.allocate_process(a, "grandchild").unwrap();
        k.exit(a, 0).unwrap();
        assert_eq!(k.process(b).unwrap().ppid, init);
        assert!(k.process(init).unwrap().children.contains(&b));
    }

    #[test]
    fn default_term_signal_kills() {
        let (mut k, init) = boot();
        let c = child_of(&mut k, init);
        k.kill(c, Sig::Term).unwrap();
        assert!(k.process(c).unwrap().is_zombie());
    }

    #[test]
    fn handler_signal_logs_instead_of_killing() {
        let (mut k, init) = boot();
        let c = child_of(&mut k, init);
        k.sigaction(c, Sig::Term, Disposition::Handler(HandlerId(42)))
            .unwrap();
        k.kill(c, Sig::Term).unwrap();
        assert!(!k.process(c).unwrap().is_zombie());
        assert_eq!(k.handler_log, vec![(c, 42)]);
    }

    #[test]
    fn blocked_signal_defers_death() {
        let (mut k, init) = boot();
        let c = child_of(&mut k, init);
        k.sigprocmask(c, Sig::Term, true).unwrap();
        k.kill(c, Sig::Term).unwrap();
        assert!(!k.process(c).unwrap().is_zombie());
        k.sigprocmask(c, Sig::Term, false).unwrap();
        k.deliver_pending(c).unwrap();
        assert!(k.process(c).unwrap().is_zombie());
    }

    #[test]
    fn sigkill_cannot_be_handled() {
        let (mut k, init) = boot();
        let c = child_of(&mut k, init);
        assert_eq!(
            k.sigaction(c, Sig::Kill, Disposition::Handler(HandlerId(1))),
            Err(Errno::Einval)
        );
        k.kill(c, Sig::Kill).unwrap();
        assert!(k.process(c).unwrap().is_zombie());
    }

    #[test]
    fn oom_killer_picks_largest_resident() {
        let (mut k, init) = boot();
        let small = child_of(&mut k, init);
        let big = child_of(&mut k, init);
        let b1 = k.mmap_anon(small, 4, Prot::RW, Share::Private).unwrap();
        k.populate(small, b1, 4).unwrap();
        let b2 = k.mmap_anon(big, 64, Prot::RW, Share::Private).unwrap();
        k.populate(big, b2, 64).unwrap();
        let victim = k.oom_kill().unwrap();
        assert_eq!(victim, big);
        assert!(k.process(big).unwrap().oom_killed);
        assert_eq!(
            k.process(big).unwrap().state,
            ProcState::Zombie(OOM_EXIT_STATUS)
        );
        assert!(!k.process(small).unwrap().is_zombie());
    }

    #[test]
    fn oom_killer_sees_commit_hog_with_no_resident_pages() {
        // An Always-mode hog that committed a huge mapping but touched
        // nothing was invisible to resident-only scoring; badness folds
        // committed charge in.
        let mut k = Kernel::new(crate::kernel::MachineConfig {
            overcommit: fpr_mem::OvercommitPolicy::Always,
            ..Default::default()
        });
        let init = k.create_init("init").unwrap();
        let worker = k.allocate_process(init, "worker").unwrap();
        let hog = k.allocate_process(init, "hog").unwrap();
        let b = k.mmap_anon(worker, 8, Prot::RW, Share::Private).unwrap();
        k.populate(worker, b, 8).unwrap();
        k.mmap_anon(hog, 4096, Prot::RW, Share::Private).unwrap(); // never touched
        assert!(k.oom_badness(hog).unwrap() > k.oom_badness(worker).unwrap());
        assert_eq!(k.oom_kill(), Some(hog));
        assert!(!k.process(worker).unwrap().is_zombie());
    }

    #[test]
    fn oom_badness_discounts_pinned_pages_and_adj_min_exempts() {
        let (mut k, init) = boot();
        let a = child_of(&mut k, init);
        let b = child_of(&mut k, init);
        let va = k.mmap_anon(a, 16, Prot::RW, Share::Private).unwrap();
        k.populate(a, va, 16).unwrap();
        let vb = k.mmap_anon(b, 16, Prot::RW, Share::Private).unwrap();
        k.populate(b, vb, 16).unwrap();
        assert_eq!(k.oom_badness(a), k.oom_badness(b));
        // Pin every frame of `a`: killing it would free nothing resident.
        let mut pfns = Vec::new();
        k.process(a).unwrap().aspace.for_each_resident(|_, pte| pfns.push(pte.pfn));
        for pfn in &pfns {
            k.phys.pin(*pfn).unwrap();
        }
        assert!(k.oom_badness(a).unwrap() < k.oom_badness(b).unwrap());
        assert_eq!(k.oom_kill(), Some(b));
        for pfn in &pfns {
            let mut c = fpr_mem::Cycles::new();
            k.phys.unpin(*pfn, &mut c).unwrap();
        }
        // OOM_SCORE_ADJ_MIN exempts entirely.
        k.process_mut(a).unwrap().oom_score_adj = crate::task::OOM_SCORE_ADJ_MIN;
        assert_eq!(k.oom_badness(a), None);
        assert_eq!(k.oom_kill(), None, "init and the exempt child survive");
    }

    #[test]
    fn guarded_oom_kill_is_single_flight_across_cells() {
        let cfg = crate::kernel::MachineConfig {
            frames: 256,
            ..Default::default()
        };
        let shared = crate::kernel::SmpShared::new(&cfg, 2);
        let mut k1 = Kernel::new_smp(cfg.clone(), &shared, 0);
        let mut k2 = Kernel::new_smp(cfg, &shared, 1);
        let i1 = k1.create_init("init").unwrap();
        let i2 = k2.create_init("init").unwrap();
        assert_ne!(i1, i2, "cells draw disjoint pids from the shared table");

        // Grows `pid` in 4-page bites until the shared pool hits the
        // Critical watermark (min = 4 for 256 frames, so a bite always
        // fits while pressure is still below Critical).
        fn drive_critical(k: &mut Kernel, pid: Pid) {
            while k.phys.pressure() < fpr_mem::PressureLevel::Critical {
                let b = k.mmap_anon(pid, 4, Prot::RW, Share::Private).unwrap();
                k.populate(pid, b, 4).unwrap();
            }
        }

        let hog = k1.allocate_process(i1, "hog").unwrap();
        drive_critical(&mut k1, hog);

        // Both cells observed the emergency at the same guard epoch.
        let stale = k1.oom_epoch();
        assert_eq!(stale, k2.oom_epoch());

        // Cell 0 wins and kills its hog.
        assert_eq!(k1.oom_kill_guarded(stale), OomDecision::Killed(hog));
        assert_eq!(k1.oom_kills, vec![hog]);

        // That kill freed frames machine-wide: cell 1's attempt at the
        // same (now stale) epoch finds pressure relieved and does nothing.
        assert_eq!(k2.oom_kill_guarded(stale), OomDecision::Relieved);
        assert!(k2.oom_kills.is_empty(), "no double kill after relief");

        // Re-create pressure from cell 1. An attempt still quoting the
        // old epoch loses the CAS — someone already acted on that
        // sighting — so it must not fire a second kill either.
        let hog2 = k2.allocate_process(i2, "hog2").unwrap();
        drive_critical(&mut k2, hog2);
        assert_eq!(k2.oom_kill_guarded(stale), OomDecision::Raced);
        assert!(k2.oom_kills.is_empty(), "raced attempt must not kill");
        assert!(!k2.process(hog2).unwrap().is_zombie());

        // Quoting the current epoch is a fresh sighting: the kill fires.
        let fresh = k2.oom_epoch();
        assert_eq!(k2.oom_kill_guarded(fresh), OomDecision::Killed(hog2));
    }

    #[test]
    fn oom_lease_is_exclusive_and_releasable_by_owner_only() {
        let g = OomGuard::new();
        assert_eq!(g.lease_holder(), None);
        assert!(g.try_lease(2));
        assert_eq!(g.lease_holder(), Some(2));
        assert!(!g.try_lease(0), "lease is exclusive");
        assert!(!g.release_lease(0), "only the holder's cell releases");
        assert!(g.release_lease(2));
        assert_eq!(g.lease_holder(), None);
        assert!(g.try_lease(0), "released lease is takeable again");
    }

    #[test]
    fn stuck_lease_makes_guarded_kill_race_until_broken() {
        let cfg = crate::kernel::MachineConfig {
            frames: 256,
            ..Default::default()
        };
        let shared = crate::kernel::SmpShared::new(&cfg, 2);
        let mut k1 = Kernel::new_smp(cfg, &shared, 0);
        let i1 = k1.create_init("init").unwrap();
        let hog = k1.allocate_process(i1, "hog").unwrap();
        while k1.phys.pressure() < fpr_mem::PressureLevel::Critical {
            let b = k1.mmap_anon(hog, 4, Prot::RW, Share::Private).unwrap();
            k1.populate(hog, b, 4).unwrap();
        }
        // Cell 1 died mid-kill: its lease is stuck.
        assert!(shared.oom.try_lease(1));
        let epoch = k1.oom_epoch();
        assert_eq!(
            k1.oom_kill_guarded(epoch),
            OomDecision::Raced,
            "a stuck lease must not let a second kill stack"
        );
        assert!(k1.oom_kills.is_empty());
        // Recovery breaks the dead cell's lease; the survivor proceeds.
        assert!(shared.oom.release_lease(1));
        assert_eq!(k1.oom_kill_guarded(epoch), OomDecision::Killed(hog));
        assert_eq!(shared.oom.lease_holder(), None, "kill path releases after itself");
    }

    #[test]
    fn evacuate_returns_the_cell_to_zero_without_touching_neighbours() {
        let cfg = crate::kernel::MachineConfig {
            frames: 4096,
            ..Default::default()
        };
        let shared = crate::kernel::SmpShared::new(&cfg, 2);
        let mut k1 = Kernel::new_smp(cfg.clone(), &shared, 0);
        let mut k2 = Kernel::new_smp(cfg, &shared, 1);
        let i1 = k1.create_init("init").unwrap();
        let i2 = k2.create_init("init").unwrap();

        // Cell 0: live children with resident memory, plus an unreaped
        // zombie and a grandchild whose parent will die before it.
        let a = k1.allocate_process(i1, "a").unwrap();
        let b = k1.allocate_process(i1, "b").unwrap();
        let grand = k1.allocate_process(a, "grand").unwrap();
        for pid in [a, b, grand] {
            let base = k1.mmap_anon(pid, 16, Prot::RW, Share::Private).unwrap();
            k1.populate(pid, base, 16).unwrap();
        }
        k1.exit(b, 0).unwrap(); // zombie until someone waits — nobody will
        // Cell 1: a bystander with memory of its own.
        let n = k2.allocate_process(i2, "bystander").unwrap();
        let base = k2.mmap_anon(n, 8, Prot::RW, Share::Private).unwrap();
        k2.populate(n, base, 8).unwrap();
        let neighbour_live_before = 2; // i2 + n

        let evacuated = k1.evacuate().unwrap();
        assert!(evacuated >= 3, "init, a, grand all exited here");
        assert!(k1.procs.is_empty(), "no process survives evacuation");
        assert_eq!(k1.phys.drawn_frames(), 0, "magazine drained, nothing resident");
        assert_eq!(k1.pids.live(), 0, "cell-local pid accounting emptied");
        assert_eq!(
            shared.pids.live(),
            neighbour_live_before,
            "only the dead cell's pids were returned to the shared table"
        );
        k1.check_invariants().unwrap();
        // Machine-wide conservation: the survivor still holds its frames.
        assert_eq!(
            k1.phys.drawn_frames() + k2.phys.drawn_frames() + shared.pool.free_frames(),
            shared.pool.total_frames()
        );
        assert!(k2.process(n).is_ok(), "the neighbour cell is untouched");
    }

    #[test]
    fn injected_evacuation_fault_is_clean_and_retryable() {
        let cfg = crate::kernel::MachineConfig::default();
        let shared = crate::kernel::SmpShared::new(&cfg, 1);
        let mut k = Kernel::new_smp(cfg, &shared, 0);
        let init = k.create_init("init").unwrap();
        let c = k.allocate_process(init, "c").unwrap();
        let base = k.mmap_anon(c, 8, Prot::RW, Share::Private).unwrap();
        k.populate(c, base, 8).unwrap();
        let procs_before = k.procs.len();
        let drawn_before = k.phys.drawn_frames();

        let (res, trace) = fpr_faults::with_plan(
            fpr_faults::FaultPlan::passive().fail_at(fpr_faults::FaultSite::CellEvacuate, 0),
            || k.evacuate(),
        );
        assert_eq!(res, Err(Errno::Eagain), "injected failure surfaces cleanly");
        assert_eq!(trace.injected().len(), 1);
        assert_eq!(k.procs.len(), procs_before, "nothing was killed");
        assert_eq!(k.phys.drawn_frames(), drawn_before, "nothing was freed");
        k.check_invariants().unwrap();

        // The retry completes the evacuation.
        assert!(k.evacuate().unwrap() >= 2);
        assert!(k.procs.is_empty());
        assert_eq!(k.phys.drawn_frames(), 0);
    }

    #[test]
    fn oom_kill_ties_break_toward_youngest_pid() {
        let (mut k, init) = boot();
        let older = child_of(&mut k, init);
        let younger = child_of(&mut k, init);
        for pid in [older, younger] {
            let v = k.mmap_anon(pid, 8, Prot::RW, Share::Private).unwrap();
            k.populate(pid, v, 8).unwrap();
        }
        assert_eq!(k.oom_badness(older), k.oom_badness(younger));
        assert_eq!(k.oom_kill(), Some(younger));
    }

    #[test]
    fn exit_closes_pipe_ends_signalling_eof() {
        let (mut k, init) = boot();
        let c = child_of(&mut k, init);
        let (r, w) = k.pipe(c).unwrap();
        // Parent holds the read end too (as after a fork).
        let entry = k.process(c).unwrap().fds.get(r).unwrap();
        k.ref_object(entry.ofd).unwrap();
        k.process_mut(init).unwrap().fds.install(entry, 64).unwrap();
        let _ = w;
        k.exit(c, 0).unwrap();
        // Child's write end died with it: parent sees EOF.
        let pr = k.process(init).unwrap().fds.highest().unwrap();
        assert_eq!(k.read_fd(init, pr, 8).unwrap(), crate::io::ReadResult::Eof);
    }

    #[test]
    fn console_capture_write_after_exit_of_writer() {
        let (mut k, init) = boot();
        k.write_fd(init, STDOUT, b"one").unwrap();
        let c = child_of(&mut k, init);
        k.exit(c, 0).unwrap();
        k.write_fd(init, STDOUT, b"two").unwrap();
        assert_eq!(k.console, b"onetwo");
    }
}
