//! Anonymous pipes with bounded buffers and end-of-stream semantics.

use crate::error::{Errno, KResult};
use std::collections::VecDeque;

/// Default pipe capacity in bytes (64 KiB, like Linux).
pub const PIPE_CAPACITY: usize = 64 * 1024;

/// Index of a pipe in the kernel pipe table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipeId(pub u32);

/// One pipe: a byte queue plus open-end counts.
#[derive(Debug)]
pub struct Pipe {
    buf: VecDeque<u8>,
    capacity: usize,
    /// Live read-end descriptions.
    pub readers: u32,
    /// Live write-end descriptions.
    pub writers: u32,
}

impl Pipe {
    fn new(capacity: usize) -> Pipe {
        Pipe {
            buf: VecDeque::new(),
            capacity,
            readers: 1,
            writers: 1,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// What a pipe read produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipeRead {
    /// Bytes were available.
    Data(Vec<u8>),
    /// No data and live writers exist: the reader would block.
    WouldBlock,
    /// No data and no writers: end of stream.
    Eof,
}

/// Kernel table of pipes.
#[derive(Debug, Default)]
pub struct PipeTable {
    slots: Vec<Option<Pipe>>,
    free: Vec<u32>,
}

impl PipeTable {
    /// Creates an empty table.
    pub fn new() -> PipeTable {
        PipeTable::default()
    }

    /// Creates a pipe with the default capacity; both end counts start at 1.
    pub fn create(&mut self) -> PipeId {
        self.create_with_capacity(PIPE_CAPACITY)
    }

    /// Creates a pipe with a custom capacity.
    pub fn create_with_capacity(&mut self, capacity: usize) -> PipeId {
        let p = Pipe::new(capacity);
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(p);
            PipeId(i)
        } else {
            self.slots.push(Some(p));
            PipeId((self.slots.len() - 1) as u32)
        }
    }

    fn pipe_mut(&mut self, id: PipeId) -> KResult<&mut Pipe> {
        self.slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(Errno::Ebadf)
    }

    /// Borrows a pipe.
    pub fn pipe(&self, id: PipeId) -> KResult<&Pipe> {
        self.slots
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(Errno::Ebadf)
    }

    /// Iterates over live `(id, pipe)` pairs (invariant checking).
    pub fn iter(&self) -> impl Iterator<Item = (PipeId, &Pipe)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (PipeId(i as u32), p)))
    }

    /// Writes bytes to the pipe. Returns bytes accepted; 0 means the
    /// buffer is full (writer would block). Fails with [`Errno::Epipe`]
    /// when no read end is open — the simulated `SIGPIPE` case.
    pub fn write(&mut self, id: PipeId, buf: &[u8]) -> KResult<usize> {
        let p = self.pipe_mut(id)?;
        if p.readers == 0 {
            return Err(Errno::Epipe);
        }
        let space = p.capacity - p.buf.len();
        let n = space.min(buf.len());
        p.buf.extend(&buf[..n]);
        Ok(n)
    }

    /// Reads up to `len` bytes.
    pub fn read(&mut self, id: PipeId, len: usize) -> KResult<PipeRead> {
        let p = self.pipe_mut(id)?;
        if p.buf.is_empty() {
            return Ok(if p.writers == 0 {
                PipeRead::Eof
            } else {
                PipeRead::WouldBlock
            });
        }
        let n = len.min(p.buf.len());
        Ok(PipeRead::Data(p.buf.drain(..n).collect()))
    }

    /// Registers another open description of one end (fork/dup).
    pub fn add_end(&mut self, id: PipeId, write_end: bool) -> KResult<()> {
        let p = self.pipe_mut(id)?;
        if write_end {
            p.writers += 1;
        } else {
            p.readers += 1;
        }
        Ok(())
    }

    /// Drops one open description of one end; destroys the pipe when both
    /// counts reach zero.
    pub fn drop_end(&mut self, id: PipeId, write_end: bool) -> KResult<()> {
        let p = self.pipe_mut(id)?;
        let c = if write_end {
            &mut p.writers
        } else {
            &mut p.readers
        };
        debug_assert!(*c > 0);
        *c -= 1;
        if p.readers == 0 && p.writers == 0 {
            self.slots[id.0 as usize] = None;
            self.free.push(id.0);
        }
        Ok(())
    }

    /// Number of live pipes.
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut t = PipeTable::new();
        let p = t.create();
        assert_eq!(t.write(p, b"hello").unwrap(), 5);
        assert_eq!(t.read(p, 3).unwrap(), PipeRead::Data(b"hel".to_vec()));
        assert_eq!(t.read(p, 10).unwrap(), PipeRead::Data(b"lo".to_vec()));
        assert_eq!(t.read(p, 10).unwrap(), PipeRead::WouldBlock);
    }

    #[test]
    fn eof_when_writers_gone() {
        let mut t = PipeTable::new();
        let p = t.create();
        t.write(p, b"x").unwrap();
        t.drop_end(p, true).unwrap();
        assert_eq!(t.read(p, 10).unwrap(), PipeRead::Data(b"x".to_vec()));
        assert_eq!(t.read(p, 10).unwrap(), PipeRead::Eof);
    }

    #[test]
    fn epipe_when_readers_gone() {
        let mut t = PipeTable::new();
        let p = t.create();
        t.drop_end(p, false).unwrap();
        assert_eq!(t.write(p, b"x"), Err(Errno::Epipe));
    }

    #[test]
    fn capacity_backpressure() {
        let mut t = PipeTable::new();
        let p = t.create_with_capacity(4);
        assert_eq!(t.write(p, b"abcdef").unwrap(), 4, "short write at capacity");
        assert_eq!(t.write(p, b"x").unwrap(), 0, "full pipe accepts nothing");
        t.read(p, 2).unwrap();
        assert_eq!(t.write(p, b"xy").unwrap(), 2);
    }

    #[test]
    fn destroyed_when_both_ends_closed() {
        let mut t = PipeTable::new();
        let p = t.create();
        t.add_end(p, false).unwrap(); // forked reader
        t.drop_end(p, false).unwrap();
        t.drop_end(p, true).unwrap();
        assert_eq!(t.live(), 1, "one reader still open");
        t.drop_end(p, false).unwrap();
        assert_eq!(t.live(), 0);
        assert_eq!(t.write(p, b"x"), Err(Errno::Ebadf));
    }
}
