//! Process and thread identifier allocation.
//!
//! Two layers: [`PidAllocator`] is the classic single-kernel bitmap, and
//! [`ShardedPidTable`] stripes the PID space across several independently
//! locked allocators so concurrent creators on different cells rarely
//! touch the same lock — fork storms serialize on the memory subsystem,
//! not on handing out numbers. Each shard's lock is a
//! [`fpr_trace::smp::VLock`] named `"pid"`, so residual contention (the
//! overflow scan when a home shard runs dry) is visible in
//! [`fpr_trace::metrics::lock_stats`].

use crate::error::{Errno, KResult};
use fpr_faults::FaultSite;
use fpr_trace::smp::VLock;
use std::collections::BTreeSet;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// A thread identifier, unique within the whole machine (like Linux TIDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u64);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Allocates PIDs with wraparound and recycling, like Linux's pid bitmap.
#[derive(Debug, Clone)]
pub struct PidAllocator {
    next: u32,
    max: u32,
    in_use: BTreeSet<u32>,
}

impl PidAllocator {
    /// Creates an allocator handing out PIDs `1..=max`.
    pub fn new(max: u32) -> Self {
        PidAllocator {
            next: 1,
            max,
            in_use: BTreeSet::new(),
        }
    }

    /// Allocates the next free PID, wrapping at `max`.
    ///
    /// Fails with [`Errno::Eagain`] when the PID space is exhausted —
    /// the error a fork bomb eventually sees.
    pub fn alloc(&mut self) -> KResult<Pid> {
        fpr_faults::cross(FaultSite::PidAlloc).map_err(|_| Errno::Eagain)?;
        self.alloc_inner()
    }

    /// The allocation body, after the fault site. [`ShardedPidTable`]
    /// crosses the site once per machine-wide allocation (so an injected
    /// fault is never masked by the overflow scan) and then calls this on
    /// each candidate shard.
    fn alloc_inner(&mut self) -> KResult<Pid> {
        if self.in_use.len() as u32 >= self.max {
            return Err(Errno::Eagain);
        }
        loop {
            let candidate = self.next;
            self.next = if self.next >= self.max {
                1
            } else {
                self.next + 1
            };
            if self.in_use.insert(candidate) {
                return Ok(Pid(candidate));
            }
        }
    }

    /// Returns a PID to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the PID was not allocated.
    pub fn free(&mut self, pid: Pid) {
        assert!(
            self.in_use.remove(&pid.0),
            "freeing unallocated pid {}",
            pid.0
        );
    }

    /// Number of live PIDs.
    pub fn live(&self) -> usize {
        self.in_use.len()
    }

    /// The maximum simultaneously live PIDs.
    pub fn capacity(&self) -> u32 {
        self.max
    }

    /// Marks a PID allocated elsewhere (a [`ShardedPidTable`]) as live in
    /// this allocator, so per-cell invariants over [`PidAllocator::live`]
    /// keep holding when the machine-wide table hands out the numbers.
    ///
    /// # Panics
    ///
    /// Panics if the PID is already live here.
    pub fn adopt(&mut self, pid: Pid) {
        assert!(
            self.in_use.insert(pid.0),
            "adopting already-live pid {}",
            pid.0
        );
    }
}

/// A machine-wide PID space striped across independently locked shards.
///
/// Shard `s` owns every PID congruent to `s + 1` modulo the shard count
/// (PID 0 stays unused, like the idle task): shard 0 of 4 hands out
/// 1, 5, 9, …; shard 1 hands out 2, 6, 10, …. Each cell allocates from
/// its *home* shard first and only scans the others when that shard is
/// exhausted, so uncontended creation storms never collide on a lock.
/// Every shard reuses [`PidAllocator`] underneath, so allocation crosses
/// the same [`FaultSite::PidAlloc`] site as the single-kernel path and
/// exhaustion surfaces as the same [`Errno::Eagain`].
#[derive(Debug)]
pub struct ShardedPidTable {
    shards: Vec<VLock<PidAllocator>>,
}

impl ShardedPidTable {
    /// Creates a table of `shards` stripes covering `max_pids` PIDs in
    /// total (each shard owns an equal slice, at least one PID).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, max_pids: u32) -> ShardedPidTable {
        assert!(shards > 0, "need at least one pid shard");
        let per = (max_pids / shards as u32).max(1);
        ShardedPidTable {
            shards: (0..shards)
                .map(|_| VLock::new("pid", PidAllocator::new(per)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Translates shard-local PID `inner` of shard `s` to the machine-wide
    /// PID.
    fn global_pid(&self, s: usize, inner: Pid) -> Pid {
        Pid((inner.0 - 1) * self.shards.len() as u32 + s as u32 + 1)
    }

    /// The shard owning a machine-wide PID.
    fn shard_of(&self, pid: Pid) -> (usize, Pid) {
        let s = ((pid.0 - 1) % self.shards.len() as u32) as usize;
        let inner = (pid.0 - 1) / self.shards.len() as u32 + 1;
        (s, Pid(inner))
    }

    /// Allocates a PID, trying the caller's home shard first and scanning
    /// the others only on exhaustion. Crosses [`FaultSite::PidAlloc`]
    /// exactly once, like the single-kernel path. Fails with
    /// [`Errno::Eagain`] when every shard is dry.
    pub fn alloc(&self, home: usize) -> KResult<Pid> {
        fpr_faults::cross(FaultSite::PidAlloc).map_err(|_| Errno::Eagain)?;
        let n = self.shards.len();
        let mut last = Err(Errno::Eagain);
        for i in 0..n {
            let s = (home + i) % n;
            match self.shards[s].lock().alloc_inner() {
                Ok(inner) => return Ok(self.global_pid(s, inner)),
                Err(e) => last = Err(e),
            }
        }
        last
    }

    /// Returns a PID to its owning shard.
    ///
    /// # Panics
    ///
    /// Panics if the PID was not allocated by this table.
    pub fn free(&self, pid: Pid) {
        let (s, inner) = self.shard_of(pid);
        self.shards[s].lock().free(inner);
    }

    /// Machine-wide count of live PIDs.
    pub fn live(&self) -> usize {
        self.shards.iter().map(|s| s.lock().live()).sum()
    }
}

/// Allocates machine-wide thread IDs monotonically.
#[derive(Debug, Clone, Default)]
pub struct TidAllocator {
    next: u64,
}

impl TidAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh TID.
    pub fn alloc(&mut self) -> Tid {
        self.next += 1;
        Tid(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pids_start_at_one_and_increment() {
        let mut a = PidAllocator::new(100);
        assert_eq!(a.alloc().unwrap(), Pid(1));
        assert_eq!(a.alloc().unwrap(), Pid(2));
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn exhaustion_is_eagain() {
        let mut a = PidAllocator::new(3);
        for _ in 0..3 {
            a.alloc().unwrap();
        }
        assert_eq!(a.alloc(), Err(Errno::Eagain));
        a.free(Pid(2));
        assert_eq!(a.alloc().unwrap(), Pid(2), "wraps and recycles");
    }

    #[test]
    fn wraparound_skips_live_pids() {
        let mut a = PidAllocator::new(4);
        let pids: Vec<Pid> = (0..4).map(|_| a.alloc().unwrap()).collect();
        a.free(pids[0]);
        a.free(pids[2]);
        // next wrapped to 1; both 1 and 3 free.
        assert_eq!(a.alloc().unwrap(), Pid(1));
        assert_eq!(a.alloc().unwrap(), Pid(3));
    }

    #[test]
    #[should_panic(expected = "unallocated pid")]
    fn free_unallocated_panics() {
        let mut a = PidAllocator::new(4);
        a.free(Pid(1));
    }

    #[test]
    fn tids_are_unique() {
        let mut t = TidAllocator::new();
        let a = t.alloc();
        let b = t.alloc();
        assert_ne!(a, b);
    }

    #[test]
    fn adopt_marks_foreign_pids_live() {
        let mut a = PidAllocator::new(8);
        a.adopt(Pid(5));
        assert_eq!(a.live(), 1);
        a.free(Pid(5));
        assert_eq!(a.live(), 0);
    }

    #[test]
    #[should_panic(expected = "already-live pid")]
    fn double_adopt_panics() {
        let mut a = PidAllocator::new(8);
        a.adopt(Pid(5));
        a.adopt(Pid(5));
    }

    #[test]
    fn shards_stripe_the_pid_space_disjointly() {
        let t = ShardedPidTable::new(4, 4096);
        // Home shards hand out their own residue classes.
        assert_eq!(t.alloc(0).unwrap(), Pid(1));
        assert_eq!(t.alloc(1).unwrap(), Pid(2));
        assert_eq!(t.alloc(2).unwrap(), Pid(3));
        assert_eq!(t.alloc(3).unwrap(), Pid(4));
        assert_eq!(t.alloc(0).unwrap(), Pid(5));
        assert_eq!(t.live(), 5);
        t.free(Pid(1));
        t.free(Pid(5));
        // Shard 0's cursor moved past inner 1 and 2; the next alloc stays
        // in its residue class (1 mod 4) without reusing freed pids yet.
        assert_eq!(t.alloc(0).unwrap(), Pid(9));
        t.free(Pid(9));
        t.free(Pid(2));
        t.free(Pid(3));
        t.free(Pid(4));
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn exhausted_home_shard_overflows_to_neighbours() {
        let t = ShardedPidTable::new(2, 4); // 2 pids per shard
        assert_eq!(t.alloc(0).unwrap(), Pid(1));
        assert_eq!(t.alloc(0).unwrap(), Pid(3));
        // Home shard 0 is dry; the scan lands on shard 1.
        assert_eq!(t.alloc(0).unwrap(), Pid(2));
        assert_eq!(t.alloc(0).unwrap(), Pid(4));
        assert_eq!(t.alloc(0), Err(Errno::Eagain), "machine-wide exhaustion");
        assert_eq!(t.alloc(1), Err(Errno::Eagain));
    }

    #[test]
    fn sharded_alloc_crosses_the_pid_fault_site() {
        let t = ShardedPidTable::new(2, 64);
        let (res, trace) = fpr_faults::with_plan(
            fpr_faults::FaultPlan::passive().fail_at(FaultSite::PidAlloc, 0),
            || t.alloc(0),
        );
        assert_eq!(trace.injected().len(), 1);
        assert_eq!(
            res,
            Err(Errno::Eagain),
            "injected fault surfaces — the overflow scan must not mask it"
        );
        assert_eq!(t.live(), 0, "no pid leaked by the failed attempt");
    }
}
