//! Process and thread identifier allocation.

use crate::error::{Errno, KResult};
use fpr_faults::FaultSite;
use std::collections::BTreeSet;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// A thread identifier, unique within the whole machine (like Linux TIDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u64);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Allocates PIDs with wraparound and recycling, like Linux's pid bitmap.
#[derive(Debug, Clone)]
pub struct PidAllocator {
    next: u32,
    max: u32,
    in_use: BTreeSet<u32>,
}

impl PidAllocator {
    /// Creates an allocator handing out PIDs `1..=max`.
    pub fn new(max: u32) -> Self {
        PidAllocator {
            next: 1,
            max,
            in_use: BTreeSet::new(),
        }
    }

    /// Allocates the next free PID, wrapping at `max`.
    ///
    /// Fails with [`Errno::Eagain`] when the PID space is exhausted —
    /// the error a fork bomb eventually sees.
    pub fn alloc(&mut self) -> KResult<Pid> {
        fpr_faults::cross(FaultSite::PidAlloc).map_err(|_| Errno::Eagain)?;
        if self.in_use.len() as u32 >= self.max {
            return Err(Errno::Eagain);
        }
        loop {
            let candidate = self.next;
            self.next = if self.next >= self.max {
                1
            } else {
                self.next + 1
            };
            if self.in_use.insert(candidate) {
                return Ok(Pid(candidate));
            }
        }
    }

    /// Returns a PID to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the PID was not allocated.
    pub fn free(&mut self, pid: Pid) {
        assert!(
            self.in_use.remove(&pid.0),
            "freeing unallocated pid {}",
            pid.0
        );
    }

    /// Number of live PIDs.
    pub fn live(&self) -> usize {
        self.in_use.len()
    }

    /// The maximum simultaneously live PIDs.
    pub fn capacity(&self) -> u32 {
        self.max
    }
}

/// Allocates machine-wide thread IDs monotonically.
#[derive(Debug, Clone, Default)]
pub struct TidAllocator {
    next: u64,
}

impl TidAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh TID.
    pub fn alloc(&mut self) -> Tid {
        self.next += 1;
        Tid(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pids_start_at_one_and_increment() {
        let mut a = PidAllocator::new(100);
        assert_eq!(a.alloc().unwrap(), Pid(1));
        assert_eq!(a.alloc().unwrap(), Pid(2));
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn exhaustion_is_eagain() {
        let mut a = PidAllocator::new(3);
        for _ in 0..3 {
            a.alloc().unwrap();
        }
        assert_eq!(a.alloc(), Err(Errno::Eagain));
        a.free(Pid(2));
        assert_eq!(a.alloc().unwrap(), Pid(2), "wraps and recycles");
    }

    #[test]
    fn wraparound_skips_live_pids() {
        let mut a = PidAllocator::new(4);
        let pids: Vec<Pid> = (0..4).map(|_| a.alloc().unwrap()).collect();
        a.free(pids[0]);
        a.free(pids[2]);
        // next wrapped to 1; both 1 and 3 free.
        assert_eq!(a.alloc().unwrap(), Pid(1));
        assert_eq!(a.alloc().unwrap(), Pid(3));
    }

    #[test]
    #[should_panic(expected = "unallocated pid")]
    fn free_unallocated_panics() {
        let mut a = PidAllocator::new(4);
        a.free(Pid(1));
    }

    #[test]
    fn tids_are_unique() {
        let mut t = TidAllocator::new();
        let a = t.alloc();
        let b = t.alloc();
        assert_ne!(a, b);
    }
}
