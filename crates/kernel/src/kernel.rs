//! The simulated kernel: machine state, process table, and memory
//! syscalls.
//!
//! [`Kernel`] owns physical memory, the global file/pipe tables, the
//! scheduler and the process table. The process-creation APIs in
//! `fpr-api` are implemented *against* this struct — fork and friends are
//! deliberately not methods here, because the whole point of the paper is
//! that they can be libraries over lower-level kernel operations.

use crate::error::{Errno, KResult};
use crate::fdtable::{Fd, FdEntry, FdTable};
use crate::file::{FileObject, OfdTable, OpenFlags};
use crate::lifecycle::OomGuard;
use crate::pid::{Pid, PidAllocator, ShardedPidTable, Tid, TidAllocator};
use crate::pipe::PipeTable;
use crate::rlimit::Resource;
use crate::sched::{Scheduler, Task};
use crate::task::Process;
use crate::time::Clock;
use crate::vfs::Vfs;
use fpr_mem::{
    AddressSpace, CommitAccount, CostModel, Cycles, FaultOutcome, OvercommitPolicy, Pfn,
    PhysMemory, Prot, Pte, Share, SharedFramePool, TlbBus, TlbModel, VmArea, VmaKind, Vpn,
};
use fpr_trace::metrics;
use fpr_trace::sink;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default base VPN for the mmap arena when a process has no recorded
/// layout (0x4000_0000 bytes ≫ 12).
pub const DEFAULT_MMAP_BASE: u64 = 0x4000_0000 >> 12;

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Physical frames (4 KiB each).
    pub frames: u64,
    /// Number of CPUs (bounds TLB-shootdown fan-out).
    pub cpus: u32,
    /// Overcommit policy.
    pub overcommit: OvercommitPolicy,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Maximum simultaneously live PIDs.
    pub max_pids: u32,
    /// Swap-device capacity in one-page slots. Zero (the default) means
    /// no swap is configured and the kernel behaves exactly as before the
    /// swap tier existed.
    pub swap_slots: u64,
    /// Transparent huge pages. When enabled, every process address space
    /// promotes eligible 2 MiB-aligned private anonymous blocks to huge
    /// leaves; off (the default) reproduces the small-page-only machine
    /// exactly.
    pub thp: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            frames: 262_144, // 1 GiB
            cpus: 4,
            overcommit: OvercommitPolicy::Heuristic,
            cost: CostModel::default(),
            max_pids: 4096,
            swap_slots: 0,
            thp: false,
        }
    }
}

/// The simulated machine and kernel.
#[derive(Debug)]
pub struct Kernel {
    /// Physical memory.
    pub phys: PhysMemory,
    /// TLB accounting.
    pub tlb: TlbModel,
    /// Global cycle counter (simulated time).
    pub cycles: Cycles,
    /// Virtual wall clock.
    pub clock: Clock,
    /// Commit accounting under the overcommit policy.
    pub commit: CommitAccount,
    /// The filesystem.
    pub vfs: Vfs,
    /// Open file descriptions.
    pub ofds: OfdTable,
    /// Pipes.
    pub pipes: PipeTable,
    /// Run queue.
    pub sched: Scheduler,
    /// Console output captured from Tty writes.
    pub console: Vec<u8>,
    /// PIDs of processes the OOM killer chose, in order.
    pub oom_kills: Vec<Pid>,
    /// Signal deliveries to user handlers, for tests: (pid, handler token).
    pub handler_log: Vec<(Pid, u64)>,
    /// Atfork handler executions: (process the handler ran in, token, phase).
    pub atfork_log: Vec<(Pid, u64, crate::atfork::AtforkPhase)>,
    /// Pending alarms (see `timer`).
    pub(crate) alarms: Vec<crate::timer::Alarm>,
    pub(crate) pids: PidAllocator,
    pub(crate) tids: TidAllocator,
    pub(crate) procs: BTreeMap<Pid, Process>,
    /// Live process count per real uid (RLIMIT_NPROC accounting).
    pub(crate) user_counts: BTreeMap<u32, u64>,
    /// Registered shrinkers, held weakly: subsystems own the strong
    /// handles and dropping them unregisters (see `reclaim`).
    pub(crate) shrinkers: Vec<std::sync::Weak<std::sync::Mutex<dyn crate::reclaim::Shrinker + Send>>>,
    /// Cumulative reclaim-pass statistics.
    pub(crate) reclaim_stats: crate::reclaim::ReclaimStats,
    /// Whether new address spaces get transparent huge pages.
    pub(crate) thp: bool,
    /// The machine-wide PID table and this cell's home shard, when this
    /// kernel is one SMP cell. `None` (the default) keeps PID allocation
    /// on the private [`PidAllocator`], byte-identical to the
    /// single-kernel machine.
    pub(crate) pid_table: Option<(Arc<ShardedPidTable>, usize)>,
    /// The machine-wide OOM single-flight guard, when SMP. `None` keeps
    /// [`Kernel::oom_kill_guarded`] unconditional, like the single-kernel
    /// machine.
    pub(crate) oom_guard: Option<Arc<OomGuard>>,
}

/// The services one multi-cell (SMP) machine shares across its cells:
/// every cell is a [`Kernel`] on its own OS thread, drawing frames from
/// one pool, PIDs from one striped table, shootdowns over one
/// interconnect, and OOM decisions through one single-flight guard.
///
/// Build one `SmpShared`, then boot each cell with [`Kernel::new_smp`].
#[derive(Debug, Clone)]
pub struct SmpShared {
    /// The machine-wide frame pool cells draw magazines from.
    pub pool: Arc<SharedFramePool>,
    /// The striped PID space (one home shard per cell).
    pub pids: Arc<ShardedPidTable>,
    /// The TLB-shootdown interconnect.
    pub tlb: Arc<TlbBus>,
    /// The OOM-killer single-flight guard.
    pub oom: Arc<OomGuard>,
}

impl SmpShared {
    /// Builds the shared services for a machine of `cells` cells using
    /// `cfg`'s frame and PID capacities.
    pub fn new(cfg: &MachineConfig, cells: usize) -> SmpShared {
        SmpShared {
            pool: Arc::new(SharedFramePool::new(cfg.frames)),
            pids: Arc::new(ShardedPidTable::new(cells.max(1), cfg.max_pids)),
            tlb: Arc::new(TlbBus::new()),
            oom: Arc::new(OomGuard::new()),
        }
    }
}

impl Kernel {
    /// Boots a machine.
    pub fn new(cfg: MachineConfig) -> Kernel {
        let mut phys = PhysMemory::new(cfg.frames, cfg.cost);
        phys.set_swap_capacity(cfg.swap_slots);
        let mut commit = CommitAccount::new(cfg.overcommit, cfg.frames);
        // CommitLimit = ratio * RAM + SwapTotal (Linux `Never` mode).
        commit.set_swap_pages(cfg.swap_slots);
        Kernel {
            phys,
            tlb: TlbModel::new(),
            cycles: Cycles::new(),
            clock: Clock::new(),
            commit,
            vfs: Vfs::new(),
            ofds: OfdTable::new(),
            pipes: PipeTable::new(),
            sched: Scheduler::new(cfg.cpus),
            console: Vec::new(),
            oom_kills: Vec::new(),
            handler_log: Vec::new(),
            atfork_log: Vec::new(),
            alarms: Vec::new(),
            pids: PidAllocator::new(cfg.max_pids),
            tids: TidAllocator::new(),
            procs: BTreeMap::new(),
            user_counts: BTreeMap::new(),
            shrinkers: Vec::new(),
            reclaim_stats: crate::reclaim::ReclaimStats::default(),
            thp: cfg.thp,
            pid_table: None,
            oom_guard: None,
        }
    }

    /// Boots with the default configuration.
    pub fn boot() -> Kernel {
        Kernel::new(MachineConfig::default())
    }

    /// Boots cell `cell` of a multi-cell machine: a full kernel whose
    /// physical memory is a magazine over `shared.pool`, whose PIDs come
    /// from `shared.pids` (home shard `cell`), whose remote shootdowns
    /// serialize on `shared.tlb`, and whose OOM kills go through
    /// `shared.oom`. Everything else (process table, VFS, scheduler) is
    /// private to the cell, so cells only meet at the explicitly shared
    /// services — exactly where real SMP kernels contend.
    pub fn new_smp(cfg: MachineConfig, shared: &SmpShared, cell: usize) -> Kernel {
        let mut k = Kernel::new(cfg.clone());
        let mut phys = PhysMemory::new_cell(Arc::clone(&shared.pool), cfg.cost);
        phys.set_swap_capacity(cfg.swap_slots);
        k.phys = phys;
        k.tlb.bus = Some(Arc::clone(&shared.tlb));
        k.pid_table = Some((Arc::clone(&shared.pids), cell));
        k.oom_guard = Some(Arc::clone(&shared.oom));
        k
    }

    /// Allocates a PID: from the machine-wide table when this kernel is
    /// an SMP cell (adopting it into the private allocator so per-cell
    /// invariants keep holding), from the private allocator otherwise.
    pub(crate) fn alloc_pid(&mut self) -> KResult<Pid> {
        match self.pid_table.as_ref() {
            Some((table, home)) => {
                let pid = table.alloc(*home)?;
                self.pids.adopt(pid);
                Ok(pid)
            }
            None => self.pids.alloc(),
        }
    }

    /// Frees a PID allocated by [`Kernel::alloc_pid`], returning it to
    /// the machine-wide table as well when SMP.
    pub(crate) fn free_pid(&mut self, pid: Pid) {
        self.pids.free(pid);
        if let Some((table, _)) = self.pid_table.as_ref() {
            table.free(pid);
        }
    }

    /// Charges one syscall entry/exit.
    pub fn charge_syscall(&mut self) {
        let c = self.phys.cost().syscall;
        self.cycles.charge(c);
    }

    /// Runs `f` with a trace sink installed, returning its result along
    /// with every [`fpr_trace::TraceEvent`] the instrumented kernel paths
    /// emitted during the scope. Tracing charges zero simulated cycles,
    /// so a traced operation costs exactly what an untraced one does.
    ///
    /// This is the assertion hook for tests and the capture point for
    /// exporters: feed the returned events to `fpr_trace::chrome` or
    /// `fpr_trace::report`.
    pub fn trace_scope<R>(
        &mut self,
        f: impl FnOnce(&mut Self) -> R,
    ) -> (R, Vec<fpr_trace::TraceEvent>) {
        sink::with_sink(|| f(self))
    }

    /// Creates the init process (PID 1) with stdio descriptors on the
    /// console.
    pub fn create_init(&mut self, name: &str) -> KResult<Pid> {
        let pid = self.alloc_pid()?;
        let tid = self.tids.alloc();
        let mut proc = Process::new(pid, pid, name, tid, self.vfs.root());
        proc.aspace.set_thp(self.thp);
        proc.pgid = crate::pgroup::Pgid(pid.0);
        proc.sid = crate::pgroup::Sid(pid.0);
        for flags in [OpenFlags::RDONLY, OpenFlags::WRONLY, OpenFlags::WRONLY] {
            let ofd = self.ofds.insert(FileObject::Tty, flags);
            proc.fds
                .install(
                    FdEntry {
                        ofd,
                        cloexec: false,
                    },
                    u64::MAX,
                )
                .expect("empty table");
        }
        *self.user_counts.entry(proc.cred.uid).or_insert(0) += 1;
        self.sched.enqueue(Task { pid, tid });
        self.procs.insert(pid, proc);
        Ok(pid)
    }

    /// Borrows a process.
    pub fn process(&self, pid: Pid) -> KResult<&Process> {
        self.procs.get(&pid).ok_or(Errno::Esrch)
    }

    /// Mutably borrows a process.
    pub fn process_mut(&mut self, pid: Pid) -> KResult<&mut Process> {
        self.procs.get_mut(&pid).ok_or(Errno::Esrch)
    }

    /// Fails with [`Errno::Esrch`] unless `pid` exists and is not a
    /// zombie — a zombie has no threads left to issue syscalls.
    pub fn ensure_alive(&self, pid: Pid) -> KResult<()> {
        if self.process(pid)?.is_zombie() {
            Err(Errno::Esrch)
        } else {
            Ok(())
        }
    }

    /// All live PIDs in order.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// Number of processes in the table (including zombies).
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Live (running) processes of one uid.
    pub fn nproc_of(&self, uid: u32) -> u64 {
        self.user_counts.get(&uid).copied().unwrap_or(0)
    }

    /// Allocates a new process shell as a child of `ppid`, enforcing
    /// `RLIMIT_NPROC`. The caller (fork/spawn implementation) populates
    /// its state. The child starts with an empty address space and FD
    /// table and is enqueued for scheduling.
    pub fn allocate_process(&mut self, ppid: Pid, name: &str) -> KResult<Pid> {
        sink::span_begin("allocate_process", "kernel", self.cycles.total());
        let r = self.allocate_process_inner(ppid, name);
        sink::span_end("allocate_process", self.cycles.total());
        r
    }

    fn allocate_process_inner(&mut self, ppid: Pid, name: &str) -> KResult<Pid> {
        self.ensure_alive(ppid)?;
        let (uid, nproc_limit, cwd, cred, rlimits, pgid, sid) = {
            let p = self.process(ppid)?;
            (
                p.cred.uid,
                p.rlimits.get(Resource::Nproc).soft,
                p.cwd,
                p.cred,
                p.rlimits,
                p.pgid,
                p.sid,
            )
        };
        if self.nproc_of(uid) >= nproc_limit {
            return Err(Errno::Eagain);
        }
        let pid = self.alloc_pid()?;
        let tid = self.tids.alloc();
        let mut proc = Process::new(pid, ppid, name, tid, cwd);
        proc.aspace.set_thp(self.thp);
        proc.cred = cred;
        proc.rlimits = rlimits;
        proc.pgid = pgid;
        proc.sid = sid;
        *self.user_counts.entry(uid).or_insert(0) += 1;
        self.sched.enqueue(Task { pid, tid });
        self.procs.insert(pid, proc);
        if let Some(parent) = self.procs.get_mut(&ppid) {
            parent.children.push(pid);
        }
        Ok(pid)
    }

    /// Number of CPUs currently executing threads of `pid`, at least 1
    /// (the caller itself runs somewhere).
    pub fn cpus_running(&self, pid: Pid) -> u32 {
        self.sched.cpus_running(pid).max(1)
    }

    /// Resolves the process whose address space `pid` actually operates
    /// on: itself normally, or the lender for a vfork borrower.
    pub fn space_owner(&self, pid: Pid) -> KResult<Pid> {
        let mut cur = pid;
        for _ in 0..16 {
            match self.process(cur)?.space_ref {
                crate::task::SpaceRef::Owned => return Ok(cur),
                crate::task::SpaceRef::BorrowedFrom(p) => cur = p,
            }
        }
        Err(Errno::Esrch)
    }

    // ------------------------------------------------------------------
    // Memory syscalls
    // ------------------------------------------------------------------

    /// Maps `pages` of anonymous memory with the given protection and
    /// sharing, returning the chosen base page.
    pub fn mmap_anon(&mut self, pid: Pid, pages: u64, prot: Prot, share: Share) -> KResult<Vpn> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let hint = {
            let p = self.process(pid)?;
            if p.layout.mmap_base != 0 {
                Vpn(p.layout.mmap_base)
            } else {
                Vpn(DEFAULT_MMAP_BASE)
            }
        };
        let start = {
            let p = self.process(pid)?;
            let limit = p.rlimits.get(Resource::AsPages).soft;
            if p.aspace.virtual_pages() + pages > limit {
                return Err(Errno::Enomem);
            }
            if self.thp && share == Share::Private && pages >= fpr_mem::HUGE_PAGES {
                // Linux's `thp_get_unmapped_area`: over-ask by one block
                // and round up, so a block-sized private mapping starts
                // 2 MiB-aligned and promotion has something to bite on.
                // ASLR hints are page-granular, so without this a THP
                // machine would almost never see an aligned VMA.
                let s = p
                    .aspace
                    .find_free_range(pages + fpr_mem::HUGE_PAGES - 1, hint)?;
                Vpn((s.0 + fpr_mem::HUGE_PAGES - 1) & !(fpr_mem::HUGE_PAGES - 1))
            } else {
                p.aspace.find_free_range(pages, hint)?
            }
        };
        let mut vma = VmArea::anon(start, pages, prot, VmaKind::Mmap);
        vma.share = share;
        self.mmap_at(pid, vma)?;
        Ok(start)
    }

    /// Maps an explicit VMA (loader path), charging commit. An `ENOMEM`
    /// under real memory pressure triggers one direct-reclaim pass (see
    /// `reclaim`) and a single retry before surfacing.
    pub fn mmap_at(&mut self, pid: Pid, vma: VmArea) -> KResult<()> {
        match self.mmap_at_inner(pid, vma.clone()) {
            Err(Errno::Enomem) if self.direct_reclaim() => self.mmap_at_inner(pid, vma),
            r => r,
        }
    }

    fn mmap_at_inner(&mut self, pid: Pid, vma: VmArea) -> KResult<()> {
        self.ensure_alive(pid)?;
        let Kernel {
            phys,
            commit,
            cycles,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        let charge = commit_charge_of(&vma);
        commit.charge(charge, phys.free_frames())?;
        match p.aspace.mmap(vma, phys, cycles) {
            Ok(()) => Ok(()),
            Err(e) => {
                commit.release(charge);
                Err(e.into())
            }
        }
    }

    /// Unmaps a range.
    pub fn munmap(&mut self, pid: Pid, start: Vpn, pages: u64) -> KResult<u64> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let cpus = self.cpus_running(pid);
        let Kernel {
            phys,
            cycles,
            tlb,
            commit,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        // Release the commit charge of the VMAs actually covered.
        let mut release = 0u64;
        for v in p.aspace.vmas().filter(|v| v.overlaps(start, pages)) {
            let lo = v.start.0.max(start.0);
            let hi = v.end().0.min(start.0 + pages);
            if commit_charge_of(v) > 0 {
                release += hi - lo;
            }
        }
        let freed = p.aspace.munmap(start, pages, phys, cycles, tlb, cpus)?;
        commit.release(release);
        Ok(freed)
    }

    /// Writes `val` to the page at `vpn` of `pid`, faulting as needed. An
    /// `ENOMEM` under real memory pressure triggers one direct-reclaim
    /// pass and a single retry before surfacing.
    pub fn write_mem(&mut self, pid: Pid, vpn: Vpn, val: u64) -> KResult<FaultOutcome> {
        match self.write_mem_inner(pid, vpn, val) {
            Err(Errno::Enomem) if self.direct_reclaim() => self.write_mem_inner(pid, vpn, val),
            Err(Errno::Eio) => self.swap_io_sigbus(pid),
            r => r,
        }
    }

    fn write_mem_inner(&mut self, pid: Pid, vpn: Vpn, val: u64) -> KResult<FaultOutcome> {
        self.ensure_alive(pid)?;
        let owner = self.space_owner(pid)?;
        let cpus = self.cpus_running(owner);
        let Kernel {
            phys,
            cycles,
            tlb,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&owner).ok_or(Errno::Esrch)?;
        Ok(p.aspace.write(vpn, val, phys, cycles, tlb, cpus)?)
    }

    /// Reads the page at `vpn` of `pid`, faulting as needed. A read of a
    /// swapped-out page allocates a frame, so an `ENOMEM` under real
    /// pressure triggers one direct-reclaim pass and a single retry.
    pub fn read_mem(&mut self, pid: Pid, vpn: Vpn) -> KResult<u64> {
        match self.read_mem_inner(pid, vpn) {
            Err(Errno::Enomem) if self.direct_reclaim() => self.read_mem_inner(pid, vpn),
            Err(Errno::Eio) => self.swap_io_sigbus(pid),
            r => r,
        }
    }

    fn read_mem_inner(&mut self, pid: Pid, vpn: Vpn) -> KResult<u64> {
        self.ensure_alive(pid)?;
        let owner = self.space_owner(pid)?;
        let Kernel {
            phys,
            cycles,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&owner).ok_or(Errno::Esrch)?;
        Ok(p.aspace.read(vpn, phys, cycles)?.0)
    }

    /// Pre-faults a range (`MAP_POPULATE`). An `ENOMEM` under real memory
    /// pressure triggers one direct-reclaim pass and a single retry
    /// before surfacing; an interrupted populate is resumable, so the
    /// retry picks up where the failed pass stopped.
    pub fn populate(&mut self, pid: Pid, start: Vpn, pages: u64) -> KResult<()> {
        match self.populate_inner(pid, start, pages) {
            Err(Errno::Enomem) if self.direct_reclaim() => self.populate_inner(pid, start, pages),
            Err(Errno::Eio) => self.swap_io_sigbus(pid),
            r => r,
        }
    }

    /// SIGBUS-style containment for a swap-device I/O error: the process
    /// whose access needed the unreadable page is killed with the exit
    /// status of a fatal `SIGBUS` and the access fails with `EFAULT`.
    /// Only the faulting process dies — the swap entry, its slot, and all
    /// kernel-wide state stay consistent (real kernels deliver `SIGBUS`
    /// on exactly this path: a swap-in that the device fails).
    fn swap_io_sigbus<T>(&mut self, pid: Pid) -> KResult<T> {
        metrics::incr("kernel.swap.sigbus");
        sink::instant("swap_sigbus", "kernel", self.cycles.total());
        self.exit(pid, crate::lifecycle::SIGBUS_EXIT_STATUS)?;
        Err(Errno::Efault)
    }

    /// True while the swap device's refault window shows thrashing — the
    /// machine is paging against its own working set. Spawn fast-path
    /// refill and retry backoff use this as a backpressure signal.
    pub fn swap_thrashing(&self) -> bool {
        self.phys.swap().thrashing()
    }

    fn populate_inner(&mut self, pid: Pid, start: Vpn, pages: u64) -> KResult<()> {
        self.ensure_alive(pid)?;
        let owner = self.space_owner(pid)?;
        let Kernel {
            phys,
            cycles,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&owner).ok_or(Errno::Esrch)?;
        Ok(p.aspace.populate(start, pages, phys, cycles)?)
    }

    // ------------------------------------------------------------------
    // Fork-support plumbing (used by fpr-api)
    // ------------------------------------------------------------------

    /// Duplicates `pid`'s descriptor table for a child: every entry takes
    /// a reference on its open file description, and pipe end counts grow.
    ///
    /// All-or-nothing: a mid-copy failure releases every reference already
    /// taken, so on `Err` the OFD table is exactly as before the call.
    pub fn clone_fd_table(&mut self, pid: Pid) -> KResult<FdTable> {
        sink::span_begin("clone_fd_table", "kernel", self.cycles.total());
        let r = self.clone_fd_table_inner(pid);
        sink::span_end("clone_fd_table", self.cycles.total());
        r
    }

    fn clone_fd_table_inner(&mut self, pid: Pid) -> KResult<FdTable> {
        let entries: Vec<(Fd, FdEntry)> = self.process(pid)?.fds.iter().collect();
        let fd_cost = self.phys.cost().fd_clone;
        let mut table = FdTable::new();
        for (fd, entry) in entries {
            // Each open descriptor costs a fixed amount to duplicate; the
            // table's sparse storage means closed slots cost nothing, so
            // fork's FD work scales with open descriptors, not max fd.
            self.cycles.charge(fd_cost);
            metrics::incr("kernel.fd_clone");
            // Shares the description (and therefore the offset); pipe end
            // counts follow descriptions, not descriptors, so they are
            // untouched here.
            let step = self
                .ofds
                .incref(entry.ofd)
                .and_then(|()| match table.install_at(fd, entry, u64::MAX) {
                    Ok(_) => Ok(()),
                    Err(e) => {
                        let survived = self.ofds.decref(entry.ofd).expect("ref just taken");
                        debug_assert!(survived.is_none(), "parent still holds a reference");
                        Err(e)
                    }
                });
            if let Err(e) = step {
                // Unwind references taken for earlier entries. The parent
                // still references each description, so none can reach zero.
                for e2 in table.drain() {
                    let survived = self.ofds.decref(e2.ofd).expect("ref taken above");
                    debug_assert!(survived.is_none());
                }
                return Err(e);
            }
        }
        Ok(table)
    }

    /// Rolls back a process created by [`Kernel::allocate_process`] whose
    /// population failed partway. Unlike `exit`, this is not a lifecycle
    /// event: no streams flush, no `SIGCHLD` fires, no zombie is left —
    /// the child simply ceases to exist and every resource it held
    /// (descriptors, address space, commit charge, PID, scheduler slot,
    /// per-uid process accounting) returns to its pre-creation state.
    pub fn abort_process_creation(&mut self, child: Pid) -> KResult<()> {
        metrics::incr("kernel.process_abort");
        if sink::is_active() {
            sink::emit(
                fpr_trace::TraceEvent::new(
                    "abort_process_creation",
                    "kernel",
                    fpr_trace::Phase::Instant,
                    self.cycles.total(),
                )
                .arg("pid", child.0 as u64),
            );
        }
        // Release descriptors the child already received.
        let entries = self.process_mut(child)?.fds.drain();
        for e in entries {
            crate::io::release_entry(&mut self.ofds, &mut self.pipes, e)?;
        }
        // Release its memory, or return a vfork borrow to the lender.
        let space_ref = self.process(child)?.space_ref.clone();
        match space_ref {
            crate::task::SpaceRef::Owned => {
                let commit = self.process(child)?.aspace.commit_pages();
                {
                    let Kernel {
                        phys,
                        cycles,
                        procs,
                        ..
                    } = self;
                    let p = procs.get_mut(&child).ok_or(Errno::Esrch)?;
                    p.aspace.destroy(phys, cycles);
                }
                self.commit.release(commit);
            }
            crate::task::SpaceRef::BorrowedFrom(parent) => {
                self.vfork_return(parent, child)?;
            }
        }
        // Unlink from the scheduler, the parent, accounting, and the PID
        // space.
        self.sched.remove_process(child);
        self.clear_alarms(child);
        let (ppid, uid) = {
            let p = self.process(child)?;
            (p.ppid, p.cred.uid)
        };
        if let Some(pp) = self.procs.get_mut(&ppid) {
            pp.children.retain(|c| *c != child);
        }
        if let Some(c) = self.user_counts.get_mut(&uid) {
            *c = c.saturating_sub(1);
        }
        self.procs.remove(&child);
        self.free_pid(child);
        Ok(())
    }

    /// Duplicates `pid`'s address space with fork semantics, charging the
    /// child's commit against the overcommit policy first.
    pub fn clone_address_space(
        &mut self,
        pid: Pid,
        mode: fpr_mem::ForkMode,
    ) -> KResult<AddressSpace> {
        sink::span_begin("clone_address_space", "kernel", self.cycles.total());
        let r = match self.clone_address_space_inner(pid, mode) {
            // The clone rolls back on failure, so a single direct-reclaim
            // retry under real pressure is safe.
            Err(Errno::Enomem) if self.direct_reclaim() => {
                self.clone_address_space_inner(pid, mode)
            }
            r => r,
        };
        sink::span_end("clone_address_space", self.cycles.total());
        r
    }

    fn clone_address_space_inner(
        &mut self,
        pid: Pid,
        mode: fpr_mem::ForkMode,
    ) -> KResult<AddressSpace> {
        let cpus = self.cpus_running(pid);
        let Kernel {
            phys,
            cycles,
            tlb,
            commit,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&pid).ok_or(Errno::Esrch)?;
        let charge = p.aspace.commit_pages();
        commit.charge(charge, phys.free_frames())?;
        match AddressSpace::fork_from(&mut p.aspace, mode, phys, cycles, tlb, cpus) {
            Ok(space) => Ok(space),
            Err(e) => {
                commit.release(charge);
                Err(e.into())
            }
        }
    }

    /// Spawns an additional thread in `pid`.
    pub fn spawn_thread(&mut self, pid: Pid) -> KResult<Tid> {
        let tid = self.tids.alloc();
        let p = self.process_mut(pid)?;
        p.threads.push(crate::thread::Thread::new(tid));
        self.sched.enqueue(Task { pid, tid });
        Ok(tid)
    }

    /// Registers a userspace lock in `pid`.
    pub fn register_lock(&mut self, pid: Pid, name_id: u32) -> KResult<crate::sync::LockId> {
        Ok(self.process_mut(pid)?.locks.register(name_id))
    }

    /// Acquires a lock for `tid` in `pid`.
    ///
    /// Returns [`Errno::Ebusy`] and blocks the thread when contended, and
    /// [`Errno::Edeadlk`] when the owner no longer exists in the process —
    /// the post-fork orphaned-lock deadlock.
    pub fn lock_acquire(&mut self, pid: Pid, tid: Tid, lock: crate::sync::LockId) -> KResult<()> {
        let p = self.process_mut(pid)?;
        match p.locks.acquire(lock, tid) {
            Ok(()) => {
                if let Some(t) = p.thread_mut(tid) {
                    t.note_acquired(lock);
                }
                Ok(())
            }
            Err(Errno::Ebusy) => {
                let owner = p
                    .locks
                    .get(lock)
                    .and_then(|l| l.owner)
                    .expect("busy lock has owner");
                if p.thread(owner).is_none() {
                    // The owner died with the fork: permanent deadlock.
                    return Err(Errno::Edeadlk);
                }
                if let Some(t) = p.thread_mut(tid) {
                    t.state = crate::thread::ThreadState::BlockedOnLock(lock);
                }
                Err(Errno::Ebusy)
            }
            Err(e) => Err(e),
        }
    }

    /// Releases a lock and wakes one blocked waiter.
    pub fn lock_release(&mut self, pid: Pid, tid: Tid, lock: crate::sync::LockId) -> KResult<()> {
        let p = self.process_mut(pid)?;
        p.locks.release(lock, tid)?;
        if let Some(t) = p.thread_mut(tid) {
            t.note_released(lock);
        }
        if let Some(w) = p
            .threads
            .iter_mut()
            .find(|t| t.state == crate::thread::ThreadState::BlockedOnLock(lock))
        {
            w.state = crate::thread::ThreadState::Runnable;
        }
        Ok(())
    }

    /// Parks every thread of `pid` for the duration of a vfork child's
    /// borrow.
    pub fn vfork_park(&mut self, pid: Pid, child: Pid) -> KResult<()> {
        let p = self.process_mut(pid)?;
        p.park_all_threads();
        p.vfork_children.push(child);
        Ok(())
    }

    /// Returns a vfork borrow: unparks the parent.
    pub fn vfork_return(&mut self, parent: Pid, child: Pid) -> KResult<()> {
        let p = self.process_mut(parent)?;
        p.vfork_children.retain(|c| *c != child);
        if p.vfork_children.is_empty() {
            p.unpark_all_threads();
        }
        Ok(())
    }

    /// Destroys `pid`'s owned address space, releasing frames and commit
    /// charge (exec's teardown path).
    pub fn destroy_address_space(&mut self, pid: Pid) -> KResult<()> {
        sink::span_begin("destroy_address_space", "kernel", self.cycles.total());
        let r = self.destroy_address_space_inner(pid);
        sink::span_end("destroy_address_space", self.cycles.total());
        r
    }

    fn destroy_address_space_inner(&mut self, pid: Pid) -> KResult<()> {
        let commit = self.process(pid)?.aspace.commit_pages();
        {
            let Kernel {
                phys,
                cycles,
                procs,
                ..
            } = self;
            let p = procs.get_mut(&pid).ok_or(Errno::Esrch)?;
            p.aspace.destroy(phys, cycles);
        }
        self.commit.release(commit);
        Ok(())
    }

    /// Replaces `pid`'s address space with an empty owned one *without*
    /// destroying the old (used when the old space was borrowed via vfork).
    pub fn detach_borrowed_space(&mut self, pid: Pid) -> KResult<()> {
        let thp = self.thp;
        let p = self.process_mut(pid)?;
        p.aspace = AddressSpace::new();
        p.aspace.set_thp(thp);
        p.space_ref = crate::task::SpaceRef::Owned;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Spawn fast-path plumbing (exec image cache + warm-child pool)
    // ------------------------------------------------------------------

    /// Relocates the VMA of `pid` starting exactly at `old` to `new`,
    /// carrying resident pages along (see
    /// [`AddressSpace::slide_vma`]). No TLB work: the only caller slides
    /// warm-pool children that have never been scheduled, so no CPU holds
    /// stale translations.
    pub fn slide_vma(&mut self, pid: Pid, old: Vpn, new: Vpn) -> KResult<u64> {
        let owner = self.space_owner(pid)?;
        let Kernel {
            phys,
            cycles,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&owner).ok_or(Errno::Esrch)?;
        let cost = phys.cost().clone();
        Ok(p.aspace.slide_vma(old, new, phys, cycles, &cost)?)
    }

    /// Maps an image-cache frame at `vpn` of `pid` copy-on-write (see
    /// [`AddressSpace::map_shared_frame`]). `exec` governs the NX bit.
    pub fn map_shared_frame(&mut self, pid: Pid, vpn: Vpn, pfn: Pfn, exec: bool) -> KResult<()> {
        let owner = self.space_owner(pid)?;
        let Kernel {
            phys,
            cycles,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&owner).ok_or(Errno::Esrch)?;
        Ok(p.aspace.map_shared_frame(vpn, pfn, exec, phys, cycles)?)
    }

    /// Write-protects and COW-marks the resident page at `vpn` of `pid`
    /// so its frame can enter the exec image cache (see
    /// [`AddressSpace::cow_protect_page`]). Returns the installed PTE.
    pub fn cow_protect_page(&mut self, pid: Pid, vpn: Vpn) -> KResult<Pte> {
        let owner = self.space_owner(pid)?;
        let Kernel {
            phys,
            cycles,
            procs,
            ..
        } = self;
        let p = procs.get_mut(&owner).ok_or(Errno::Esrch)?;
        Ok(p.aspace.cow_protect_page(vpn, phys, cycles)?)
    }

    /// Re-parents a warm-pool child onto `new_parent` at checkout: the
    /// child adopts the new parent's credentials, resource limits, working
    /// directory, and process group/session — exactly what it would have
    /// inherited had `new_parent` spawned it directly — and per-uid
    /// process accounting moves with it. Enforces the adopter's
    /// `RLIMIT_NPROC` the same way [`Kernel::allocate_process`] does, so a
    /// pool hit cannot evade the limit a plain spawn would hit.
    pub fn adopt_process(&mut self, child: Pid, new_parent: Pid) -> KResult<()> {
        self.ensure_alive(child)?;
        self.ensure_alive(new_parent)?;
        let (new_uid, nproc_limit, cwd, cred, rlimits, pgid, sid) = {
            let p = self.process(new_parent)?;
            (
                p.cred.uid,
                p.rlimits.get(Resource::Nproc).soft,
                p.cwd,
                p.cred,
                p.rlimits,
                p.pgid,
                p.sid,
            )
        };
        let (old_ppid, old_uid) = {
            let p = self.process(child)?;
            (p.ppid, p.cred.uid)
        };
        // The child already counts in its current uid bucket; compare the
        // count it would add to, excluding itself.
        let counted = if new_uid == old_uid {
            self.nproc_of(new_uid).saturating_sub(1)
        } else {
            self.nproc_of(new_uid)
        };
        if counted >= nproc_limit {
            return Err(Errno::Eagain);
        }
        if let Some(pp) = self.procs.get_mut(&old_ppid) {
            pp.children.retain(|c| *c != child);
        }
        if let Some(np) = self.procs.get_mut(&new_parent) {
            np.children.push(child);
        }
        if new_uid != old_uid {
            if let Some(c) = self.user_counts.get_mut(&old_uid) {
                *c = c.saturating_sub(1);
            }
            *self.user_counts.entry(new_uid).or_insert(0) += 1;
        }
        let p = self.process_mut(child)?;
        p.ppid = new_parent;
        p.cwd = cwd;
        p.cred = cred;
        p.rlimits = rlimits;
        p.pgid = pgid;
        p.sid = sid;
        Ok(())
    }

    /// Releases one descriptor-table entry (public wrapper over the io
    /// internals, for the exec path in `fpr-exec`).
    pub fn release_fd_entry(&mut self, entry: FdEntry) -> KResult<()> {
        crate::io::release_entry(&mut self.ofds, &mut self.pipes, entry)
    }

    /// Moves `pid`'s per-uid process accounting to `new_uid` (after a
    /// credential change). The PCB's credential fields are the caller's
    /// responsibility.
    pub fn move_uid_accounting(&mut self, pid: Pid, new_uid: u32) -> KResult<()> {
        let old_uid = {
            // The PCB may already carry the new uid; account by what the
            // books say, decrementing whichever entry this pid was under.
            // Since books are per-uid counters (not per-pid), use ppid
            // lineage: decrement the parent's uid bucket.
            let p = self.process(pid)?;
            let parent = self
                .process(p.ppid)
                .map(|pp| pp.cred.uid)
                .unwrap_or(p.cred.uid);
            parent
        };
        if old_uid == new_uid {
            return Ok(());
        }
        if let Some(c) = self.user_counts.get_mut(&old_uid) {
            *c = c.saturating_sub(1);
        }
        *self.user_counts.entry(new_uid).or_insert(0) += 1;
        Ok(())
    }

    /// Total resident pages across all live processes.
    pub fn total_resident(&self) -> u64 {
        self.procs
            .values()
            .filter(|p| !p.is_zombie())
            .map(|p| p.resident_pages())
            .sum()
    }

    /// Total swapped-out pages across all live processes (page-table
    /// view; shared slots count once per referencing space, like RSS).
    pub fn total_swapped(&self) -> u64 {
        self.procs
            .values()
            .filter(|p| !p.is_zombie())
            .map(|p| p.aspace.swapped_pages())
            .sum()
    }
}

/// Commit charge of one VMA (mirrors `fpr_mem`'s accounting rule).
fn commit_charge_of(v: &VmArea) -> u64 {
    match (v.share, v.backing, v.prot.write) {
        (Share::Private, _, true) => v.pages,
        (Share::Shared, fpr_mem::Backing::Anon, _) => v.pages,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot_with_init() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn init_has_stdio_on_console() {
        let (k, init) = boot_with_init();
        let p = k.process(init).unwrap();
        assert_eq!(p.fds.open_count(), 3);
        assert_eq!(p.pid, Pid(1));
        assert_eq!(k.ofds.live(), 3);
    }

    #[test]
    fn allocate_process_links_parent_and_counts_uid() {
        let (mut k, init) = boot_with_init();
        let child = k.allocate_process(init, "child").unwrap();
        assert_eq!(k.process(child).unwrap().ppid, init);
        assert!(k.process(init).unwrap().children.contains(&child));
        assert_eq!(k.nproc_of(0), 2);
    }

    #[test]
    fn nproc_limit_blocks_allocation() {
        let (mut k, init) = boot_with_init();
        k.process_mut(init)
            .unwrap()
            .rlimits
            .set(Resource::Nproc, crate::rlimit::Rlimit::both(2));
        k.allocate_process(init, "a").unwrap();
        assert_eq!(k.allocate_process(init, "b"), Err(Errno::Eagain));
    }

    #[test]
    fn mmap_write_read_roundtrip() {
        let (mut k, init) = boot_with_init();
        let base = k.mmap_anon(init, 4, Prot::RW, Share::Private).unwrap();
        k.write_mem(init, base, 77).unwrap();
        assert_eq!(k.read_mem(init, base), Ok(77));
        assert_eq!(k.read_mem(init, base.add(1)), Ok(0));
        assert_eq!(k.process(init).unwrap().resident_pages(), 2);
    }

    #[test]
    fn mmap_respects_as_rlimit() {
        let (mut k, init) = boot_with_init();
        k.process_mut(init)
            .unwrap()
            .rlimits
            .set(Resource::AsPages, crate::rlimit::Rlimit::both(10));
        assert!(k.mmap_anon(init, 8, Prot::RW, Share::Private).is_ok());
        assert_eq!(
            k.mmap_anon(init, 8, Prot::RW, Share::Private),
            Err(Errno::Enomem)
        );
    }

    #[test]
    fn munmap_releases_commit() {
        let (mut k, init) = boot_with_init();
        let before = k.commit.committed();
        let base = k.mmap_anon(init, 16, Prot::RW, Share::Private).unwrap();
        assert_eq!(k.commit.committed(), before + 16);
        k.munmap(init, base, 16).unwrap();
        assert_eq!(k.commit.committed(), before);
    }

    #[test]
    fn commit_limit_never_policy_fails_up_front() {
        let mut k = Kernel::new(MachineConfig {
            frames: 100,
            overcommit: OvercommitPolicy::Never { ratio: 0.5 },
            ..MachineConfig::default()
        });
        let init = k.create_init("init").unwrap();
        assert!(k.mmap_anon(init, 40, Prot::RW, Share::Private).is_ok());
        assert_eq!(
            k.mmap_anon(init, 40, Prot::RW, Share::Private),
            Err(Errno::Enomem)
        );
    }

    #[test]
    fn clone_fd_table_shares_descriptions() {
        let (mut k, init) = boot_with_init();
        let table = k.clone_fd_table(init).unwrap();
        assert_eq!(table.open_count(), 3);
        // Each of the three stdio OFDs now has two references.
        let entry = table.get(crate::fdtable::STDOUT).unwrap();
        assert_eq!(k.ofds.refs(entry.ofd), Ok(2));
    }

    #[test]
    fn clone_address_space_charges_commit() {
        let (mut k, init) = boot_with_init();
        k.mmap_anon(init, 8, Prot::RW, Share::Private).unwrap();
        let before = k.commit.committed();
        let space = k.clone_address_space(init, fpr_mem::ForkMode::Cow).unwrap();
        assert_eq!(k.commit.committed(), before + 8);
        assert_eq!(space.virtual_pages(), 8);
    }

    #[test]
    fn adopt_process_reparents_and_enforces_adopter_nproc() {
        let (mut k, init) = boot_with_init();
        let parked = k.allocate_process(init, "parked").unwrap();
        let adopter = k.allocate_process(init, "adopter").unwrap();
        // Three live processes of uid 0; an adopter capped at 2 would not
        // have been allowed to spawn the child itself, so adoption fails.
        k.process_mut(adopter)
            .unwrap()
            .rlimits
            .set(Resource::Nproc, crate::rlimit::Rlimit::both(2));
        assert_eq!(k.adopt_process(parked, adopter), Err(Errno::Eagain));
        assert_eq!(k.process(parked).unwrap().ppid, init, "unchanged on Err");
        k.process_mut(adopter)
            .unwrap()
            .rlimits
            .set(Resource::Nproc, crate::rlimit::Rlimit::both(8));
        k.adopt_process(parked, adopter).unwrap();
        assert_eq!(k.process(parked).unwrap().ppid, adopter);
        assert!(k.process(adopter).unwrap().children.contains(&parked));
        assert!(!k.process(init).unwrap().children.contains(&parked));
        assert_eq!(k.nproc_of(0), 3, "same-uid adoption moves no accounting");
        // Adopting back restores the original linkage (the re-park path).
        k.adopt_process(parked, init).unwrap();
        assert_eq!(k.process(parked).unwrap().ppid, init);
        assert!(!k.process(adopter).unwrap().children.contains(&parked));
    }

    #[test]
    fn slide_vma_via_kernel_keeps_commit_and_resident() {
        let (mut k, init) = boot_with_init();
        let base = k.mmap_anon(init, 8, Prot::RW, Share::Private).unwrap();
        k.write_mem(init, base, 3).unwrap();
        let committed = k.commit.committed();
        let resident = k.process(init).unwrap().resident_pages();
        let dest = Vpn(base.0 + 0x10_0000);
        let moved = k.slide_vma(init, base, dest).unwrap();
        assert_eq!(moved, 1, "one resident page carried");
        assert_eq!(k.commit.committed(), committed);
        assert_eq!(k.process(init).unwrap().resident_pages(), resident);
        assert_eq!(k.read_mem(init, dest), Ok(3));
    }

    #[test]
    fn orphaned_lock_is_edeadlk() {
        let (mut k, init) = boot_with_init();
        let lock = k
            .register_lock(init, crate::sync::names::MALLOC_ARENA)
            .unwrap();
        // A "ghost" thread that will not survive fork: simulate by
        // acquiring with a tid that is not in the thread list.
        let ghost = Tid(9999);
        k.process_mut(init)
            .unwrap()
            .locks
            .acquire(lock, ghost)
            .unwrap();
        let main = k.process(init).unwrap().main_tid();
        assert_eq!(k.lock_acquire(init, main, lock), Err(Errno::Edeadlk));
    }

    #[test]
    fn contended_lock_blocks_then_wakes() {
        let (mut k, init) = boot_with_init();
        let lock = k.register_lock(init, crate::sync::names::APP).unwrap();
        let t2 = k.spawn_thread(init).unwrap();
        let main = k.process(init).unwrap().main_tid();
        k.lock_acquire(init, main, lock).unwrap();
        assert_eq!(k.lock_acquire(init, t2, lock), Err(Errno::Ebusy));
        assert!(!k
            .process(init)
            .unwrap()
            .thread(t2)
            .unwrap()
            .is_schedulable());
        k.lock_release(init, main, lock).unwrap();
        assert!(k
            .process(init)
            .unwrap()
            .thread(t2)
            .unwrap()
            .is_schedulable());
        k.lock_acquire(init, t2, lock).unwrap();
    }

    #[test]
    fn smp_cells_share_one_pool_and_conserve_frames() {
        let cfg = MachineConfig {
            frames: 1024,
            ..Default::default()
        };
        let shared = SmpShared::new(&cfg, 2);
        let mut cells: Vec<Kernel> = (0..2)
            .map(|c| Kernel::new_smp(cfg.clone(), &shared, c))
            .collect();
        let mut pids = Vec::new();
        for k in &mut cells {
            let init = k.create_init("init").unwrap();
            let child = k.allocate_process(init, "worker").unwrap();
            let b = k
                .mmap_anon(child, 32, fpr_mem::Prot::RW, fpr_mem::Share::Private)
                .unwrap();
            k.populate(child, b, 32).unwrap();
            pids.extend([init, child]);
        }
        let unique: std::collections::BTreeSet<Pid> = pids.iter().copied().collect();
        assert_eq!(unique.len(), pids.len(), "shared pid table never collides");
        assert_eq!(shared.pids.live(), pids.len());

        // Machine-wide conservation: every frame is either free in the
        // pool or drawn by exactly one cell (resident or magazine-parked).
        let drawn: u64 = cells.iter().map(|k| k.phys.drawn_frames()).sum();
        assert_eq!(drawn + shared.pool.free_frames(), shared.pool.total_frames());

        for k in &cells {
            k.check_invariants().unwrap();
        }

        // Tearing a cell down returns its frames to the pool.
        for k in &mut cells {
            let victims: Vec<Pid> = k
                .procs
                .values()
                .filter(|p| p.ppid != p.pid) // init is its own parent
                .map(|p| p.pid)
                .collect();
            for pid in victims {
                let _ = k.kill(pid, crate::signal::Sig::Kill);
            }
            k.phys.disable_frame_cache();
        }
        let drawn_after: u64 = cells.iter().map(|k| k.phys.drawn_frames()).sum();
        assert!(
            drawn_after < drawn,
            "killing workers must return frames to the shared pool"
        );
        assert_eq!(
            drawn_after + shared.pool.free_frames(),
            shared.pool.total_frames()
        );
    }
}
