//! `pthread_atfork` handlers — the workaround that proves the problem.
//!
//! POSIX's answer to fork's thread-unsafety: libraries register
//! prepare/parent/child hooks so fork can acquire every lock before the
//! snapshot and release it on both sides. The paper's critique, which the
//! model makes testable: coverage is opt-in per library, ordering across
//! libraries is fragile, and one unregistered lock re-creates the
//! deadlock. Handlers are identified by tokens; execution is recorded in
//! an event log the tests assert on.

use crate::sync::LockId;

/// One registered atfork triple. `lock` names the lock this registration
/// protects (if any), which lets the fork implementation actually
/// acquire/release it around the snapshot like glibc's malloc does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtforkRegistration {
    /// Token identifying the registering library (for logs/audits).
    pub token: u64,
    /// The lock the prepare handler acquires and both sides release.
    pub lock: Option<LockId>,
}

/// Ordered atfork registrations of one process.
///
/// POSIX ordering: `prepare` handlers run in **reverse** registration
/// order; `parent`/`child` handlers run in registration order.
#[derive(Debug, Clone, Default)]
pub struct AtforkTable {
    regs: Vec<AtforkRegistration>,
}

/// A phase of atfork execution, for the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtforkPhase {
    /// Before the snapshot, in the parent.
    Prepare,
    /// After the snapshot, in the parent.
    Parent,
    /// After the snapshot, in the child.
    Child,
}

impl AtforkTable {
    /// Creates an empty table.
    pub fn new() -> AtforkTable {
        AtforkTable::default()
    }

    /// Registers a handler triple.
    pub fn register(&mut self, reg: AtforkRegistration) {
        self.regs.push(reg);
    }

    /// Registrations in `prepare` order (reverse of registration).
    pub fn prepare_order(&self) -> Vec<AtforkRegistration> {
        self.regs.iter().rev().copied().collect()
    }

    /// Registrations in `parent`/`child` order (registration order).
    pub fn completion_order(&self) -> Vec<AtforkRegistration> {
        self.regs.clone()
    }

    /// The set of locks covered by some registration.
    pub fn covered_locks(&self) -> Vec<LockId> {
        self.regs.iter().filter_map(|r| r.lock).collect()
    }

    /// Number of registrations.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True if no handlers are registered.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(token: u64, lock: Option<u32>) -> AtforkRegistration {
        AtforkRegistration {
            token,
            lock: lock.map(LockId),
        }
    }

    #[test]
    fn prepare_is_reverse_completion_is_forward() {
        let mut t = AtforkTable::new();
        t.register(reg(1, None));
        t.register(reg(2, None));
        t.register(reg(3, None));
        let prep: Vec<u64> = t.prepare_order().iter().map(|r| r.token).collect();
        let comp: Vec<u64> = t.completion_order().iter().map(|r| r.token).collect();
        assert_eq!(prep, vec![3, 2, 1]);
        assert_eq!(comp, vec![1, 2, 3]);
    }

    #[test]
    fn covered_locks_filters() {
        let mut t = AtforkTable::new();
        t.register(reg(1, Some(7)));
        t.register(reg(2, None));
        t.register(reg(3, Some(9)));
        assert_eq!(t.covered_locks(), vec![LockId(7), LockId(9)]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
