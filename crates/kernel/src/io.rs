//! Descriptor syscalls: open/close/dup/pipe and read/write routing.

use crate::error::{Errno, KResult};
use crate::fdtable::{Fd, FdEntry};
use crate::file::{FileObject, OfdId, OpenFlags};
use crate::kernel::Kernel;
use crate::pid::Pid;
use crate::pipe::{PipeRead, PipeTable};
use crate::rlimit::Resource;
use crate::stdio::{BufMode, UserStream};

/// Result of a descriptor read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadResult {
    /// Bytes read.
    Data(Vec<u8>),
    /// Nothing available yet (pipe with live writers).
    WouldBlock,
    /// End of stream.
    Eof,
}

impl Kernel {
    fn nofile(&self, pid: Pid) -> KResult<u64> {
        Ok(self.process(pid)?.rlimits.get(Resource::Nofile).soft)
    }

    /// Opens `path` (optionally creating it) and returns a descriptor.
    pub fn open(&mut self, pid: Pid, path: &str, flags: OpenFlags, create: bool) -> KResult<Fd> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let cwd = self.process(pid)?.cwd;
        let (ino, created) = match self.vfs.resolve(path, cwd) {
            Ok(i) => (i, false),
            Err(Errno::Enoent) if create => (self.vfs.create(path, cwd, Vec::new())?, true),
            Err(e) => return Err(e),
        };
        let limit = self.nofile(pid)?;
        let ofd = self.ofds.insert(FileObject::Vnode(ino), flags);
        let fd = self.process_mut(pid)?.fds.install(
            FdEntry {
                ofd,
                cloexec: false,
            },
            limit,
        );
        match fd {
            Ok(fd) => Ok(fd),
            Err(e) => {
                self.ofds.decref(ofd)?;
                if created {
                    // The inode exists only because this call created it;
                    // a failed open must not leave it behind.
                    let _ = self.vfs.unlink(path, cwd);
                }
                Err(e)
            }
        }
    }

    /// Closes a descriptor.
    pub fn close(&mut self, pid: Pid, fd: Fd) -> KResult<()> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let entry = self.process_mut(pid)?.fds.remove(fd)?;
        release_entry(&mut self.ofds, &mut self.pipes, entry)
    }

    /// Duplicates a descriptor to the lowest free slot.
    pub fn dup(&mut self, pid: Pid, fd: Fd) -> KResult<Fd> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let limit = self.nofile(pid)?;
        let entry = self.process(pid)?.fds.get(fd)?;
        self.ref_object(entry.ofd)?;
        // dup clears FD_CLOEXEC on the new descriptor.
        let new = FdEntry {
            ofd: entry.ofd,
            cloexec: false,
        };
        match self.process_mut(pid)?.fds.install(new, limit) {
            Ok(fd) => Ok(fd),
            Err(e) => {
                release_entry(&mut self.ofds, &mut self.pipes, new)?;
                Err(e)
            }
        }
    }

    /// Duplicates `old` onto `new` (closing whatever `new` held).
    pub fn dup2(&mut self, pid: Pid, old: Fd, new: Fd) -> KResult<Fd> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        if old == new {
            self.process(pid)?.fds.get(old)?;
            return Ok(new);
        }
        let limit = self.nofile(pid)?;
        let entry = self.process(pid)?.fds.get(old)?;
        self.ref_object(entry.ofd)?;
        let fresh = FdEntry {
            ofd: entry.ofd,
            cloexec: false,
        };
        let displaced = match self.process_mut(pid)?.fds.install_at(new, fresh, limit) {
            Ok(d) => d,
            Err(e) => {
                // The reference taken above was never installed; `old`
                // still holds one, so this cannot destroy the description.
                self.ofds.decref(entry.ofd)?;
                return Err(e);
            }
        };
        if let Some(d) = displaced {
            release_entry(&mut self.ofds, &mut self.pipes, d)?;
        }
        Ok(new)
    }

    /// Adds a reference to an OFD (used by dup and by fork/spawn
    /// implementations granting descriptors to children).
    ///
    /// Pipe end counts are **not** touched: they count open file
    /// descriptions, not descriptors, and sharing an OFD does not create
    /// a new description. (Getting this wrong leaked pipes on every
    /// dup-then-exit — caught by the model-based descriptor test.)
    pub fn ref_object(&mut self, ofd: OfdId) -> KResult<()> {
        self.ofds.incref(ofd)
    }

    /// Creates a pipe, returning `(read_fd, write_fd)`.
    pub fn pipe(&mut self, pid: Pid) -> KResult<(Fd, Fd)> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let limit = self.nofile(pid)?;
        let id = self.pipes.create();
        let r_ofd = self
            .ofds
            .insert(FileObject::PipeRead(id), OpenFlags::RDONLY);
        let w_ofd = self
            .ofds
            .insert(FileObject::PipeWrite(id), OpenFlags::WRONLY);
        let p = self.process_mut(pid)?;
        let r = match p.fds.install(
            FdEntry {
                ofd: r_ofd,
                cloexec: false,
            },
            limit,
        ) {
            Ok(r) => r,
            Err(e) => {
                // Neither end was installed: unwind both descriptions and
                // the pipe itself.
                self.ofds.decref(r_ofd)?;
                self.pipes.drop_end(id, false)?;
                self.ofds.decref(w_ofd)?;
                self.pipes.drop_end(id, true)?;
                return Err(e);
            }
        };
        let w = match p.fds.install(
            FdEntry {
                ofd: w_ofd,
                cloexec: false,
            },
            limit,
        ) {
            Ok(w) => w,
            Err(e) => {
                let entry = p.fds.remove(r)?;
                release_entry(&mut self.ofds, &mut self.pipes, entry)?;
                self.ofds.decref(w_ofd)?;
                self.pipes.drop_end(id, true)?;
                return Err(e);
            }
        };
        Ok((r, w))
    }

    /// Writes through a descriptor. Returns bytes accepted.
    pub fn write_fd(&mut self, pid: Pid, fd: Fd, buf: &[u8]) -> KResult<usize> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let entry = self.process(pid)?.fds.get(fd)?;
        let (object, flags, offset) = {
            let f = self.ofds.get(entry.ofd)?;
            (f.object, f.flags, f.offset)
        };
        if !flags.write {
            return Err(Errno::Ebadf);
        }
        match object {
            FileObject::Tty => {
                self.console.extend_from_slice(buf);
                Ok(buf.len())
            }
            FileObject::Null => Ok(buf.len()),
            FileObject::Vnode(ino) => {
                let pos = if flags.append {
                    self.vfs.len(ino)?
                } else {
                    offset
                };
                let n = self.vfs.write_at(ino, pos, buf)?;
                self.ofds.get_mut(entry.ofd)?.offset = pos + n as u64;
                Ok(n)
            }
            FileObject::PipeWrite(p) => self.pipes.write(p, buf),
            FileObject::PipeRead(_) => Err(Errno::Ebadf),
        }
    }

    /// Reads up to `len` bytes from a descriptor.
    pub fn read_fd(&mut self, pid: Pid, fd: Fd, len: usize) -> KResult<ReadResult> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let entry = self.process(pid)?.fds.get(fd)?;
        let (object, flags, offset) = {
            let f = self.ofds.get(entry.ofd)?;
            (f.object, f.flags, f.offset)
        };
        if !flags.read {
            return Err(Errno::Ebadf);
        }
        match object {
            FileObject::Tty => Ok(ReadResult::WouldBlock),
            FileObject::Null => Ok(ReadResult::Eof),
            FileObject::Vnode(ino) => {
                let data = self.vfs.read_at(ino, offset, len)?;
                if data.is_empty() {
                    return Ok(ReadResult::Eof);
                }
                self.ofds.get_mut(entry.ofd)?.offset = offset + data.len() as u64;
                Ok(ReadResult::Data(data))
            }
            FileObject::PipeRead(p) => Ok(match self.pipes.read(p, len)? {
                PipeRead::Data(d) => ReadResult::Data(d),
                PipeRead::WouldBlock => ReadResult::WouldBlock,
                PipeRead::Eof => ReadResult::Eof,
            }),
            FileObject::PipeWrite(_) => Err(Errno::Ebadf),
        }
    }

    /// Sets `FD_CLOEXEC` on a descriptor.
    pub fn set_cloexec(&mut self, pid: Pid, fd: Fd, cloexec: bool) -> KResult<()> {
        self.process_mut(pid)?.fds.set_cloexec(fd, cloexec)
    }

    /// Attaches a buffered user stream to a descriptor of `pid` and
    /// returns its index. (Userspace state, modelled in the PCB.)
    pub fn stream_open(&mut self, pid: Pid, fd: Fd, mode: BufMode) -> KResult<usize> {
        let p = self.process_mut(pid)?;
        p.streams.push(UserStream::new(fd, mode));
        Ok(p.streams.len() - 1)
    }

    /// Writes through a buffered stream; spilled bytes go to the
    /// underlying descriptor.
    pub fn stream_write(&mut self, pid: Pid, stream: usize, data: &[u8]) -> KResult<usize> {
        let (fd, out) = {
            let p = self.process_mut(pid)?;
            let s = p.streams.get_mut(stream).ok_or(Errno::Ebadf)?;
            (s.fd, s.write(data))
        };
        if !out.0.is_empty() {
            self.write_fd(pid, fd, &out.0)?;
        }
        Ok(data.len())
    }

    /// Flushes one buffered stream to its descriptor.
    pub fn stream_flush(&mut self, pid: Pid, stream: usize) -> KResult<()> {
        let (fd, out) = {
            let p = self.process_mut(pid)?;
            let s = p.streams.get_mut(stream).ok_or(Errno::Ebadf)?;
            (s.fd, s.flush())
        };
        if !out.0.is_empty() {
            self.write_fd(pid, fd, &out.0)?;
        }
        Ok(())
    }
}

/// Releases one descriptor-table entry: drops the OFD reference and, if
/// the description died, the object-side state.
pub(crate) fn release_entry(
    ofds: &mut crate::file::OfdTable,
    pipes: &mut PipeTable,
    entry: FdEntry,
) -> KResult<()> {
    if let Some(obj) = ofds.decref(entry.ofd)? {
        match obj {
            FileObject::PipeRead(p) => pipes.drop_end(p, false)?,
            FileObject::PipeWrite(p) => pipes.drop_end(p, true)?,
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdtable::STDOUT;

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn console_write_lands_in_capture() {
        let (mut k, init) = boot();
        k.write_fd(init, STDOUT, b"hello\n").unwrap();
        assert_eq!(k.console, b"hello\n");
    }

    #[test]
    fn file_io_with_shared_offset() {
        let (mut k, init) = boot();
        let fd = k.open(init, "/log", OpenFlags::RDWR, true).unwrap();
        k.write_fd(init, fd, b"abcdef").unwrap();
        let dupped = k.dup(init, fd).unwrap();
        // The dup shares the offset: reading from it continues at 6 → EOF.
        assert_eq!(k.read_fd(init, dupped, 4).unwrap(), ReadResult::Eof);
        // Rewind through either descriptor affects both.
        {
            let entry = k.process(init).unwrap().fds.get(fd).unwrap();
            k.ofds.get_mut(entry.ofd).unwrap().offset = 0;
        }
        assert_eq!(
            k.read_fd(init, dupped, 4).unwrap(),
            ReadResult::Data(b"abcd".to_vec())
        );
        assert_eq!(
            k.read_fd(init, fd, 4).unwrap(),
            ReadResult::Data(b"ef".to_vec())
        );
    }

    #[test]
    fn append_mode_seeks_to_eof() {
        let (mut k, init) = boot();
        let mut fl = OpenFlags::WRONLY;
        fl.append = true;
        k.vfs.create("/a", k.vfs.root(), b"xx".to_vec()).unwrap();
        let fd = k.open(init, "/a", fl, false).unwrap();
        k.write_fd(init, fd, b"yy").unwrap();
        let ino = k.vfs.resolve("/a", k.vfs.root()).unwrap();
        assert_eq!(k.vfs.read_at(ino, 0, 10).unwrap(), b"xxyy");
    }

    #[test]
    fn pipe_roundtrip_and_eof() {
        let (mut k, init) = boot();
        let (r, w) = k.pipe(init).unwrap();
        k.write_fd(init, w, b"data").unwrap();
        assert_eq!(
            k.read_fd(init, r, 10).unwrap(),
            ReadResult::Data(b"data".to_vec())
        );
        assert_eq!(k.read_fd(init, r, 10).unwrap(), ReadResult::WouldBlock);
        k.close(init, w).unwrap();
        assert_eq!(k.read_fd(init, r, 10).unwrap(), ReadResult::Eof);
    }

    #[test]
    fn write_to_read_end_is_ebadf() {
        let (mut k, init) = boot();
        let (r, w) = k.pipe(init).unwrap();
        assert_eq!(k.write_fd(init, r, b"x"), Err(Errno::Ebadf));
        assert_eq!(k.read_fd(init, w, 1), Err(Errno::Ebadf));
    }

    #[test]
    fn close_releases_pipe_ends() {
        let (mut k, init) = boot();
        let (r, w) = k.pipe(init).unwrap();
        assert_eq!(k.pipes.live(), 1);
        k.close(init, r).unwrap();
        k.close(init, w).unwrap();
        assert_eq!(k.pipes.live(), 0);
    }

    #[test]
    fn dup2_redirects_stdout() {
        let (mut k, init) = boot();
        let fd = k.open(init, "/out", OpenFlags::WRONLY, true).unwrap();
        k.dup2(init, fd, STDOUT).unwrap();
        k.close(init, fd).unwrap();
        k.write_fd(init, STDOUT, b"redirected").unwrap();
        let ino = k.vfs.resolve("/out", k.vfs.root()).unwrap();
        assert_eq!(k.vfs.read_at(ino, 0, 64).unwrap(), b"redirected");
        assert!(k.console.is_empty());
    }

    #[test]
    fn open_missing_without_create_fails() {
        let (mut k, init) = boot();
        assert_eq!(
            k.open(init, "/nope", OpenFlags::RDONLY, false),
            Err(Errno::Enoent)
        );
    }

    #[test]
    fn stream_buffers_until_flush() {
        let (mut k, init) = boot();
        let s = k.stream_open(init, STDOUT, BufMode::FullyBuffered).unwrap();
        k.stream_write(init, s, b"buffered").unwrap();
        assert!(k.console.is_empty());
        assert_eq!(k.process(init).unwrap().unflushed_bytes(), 8);
        k.stream_flush(init, s).unwrap();
        assert_eq!(k.console, b"buffered");
        assert_eq!(k.process(init).unwrap().unflushed_bytes(), 0);
    }

    #[test]
    fn dup_clears_cloexec() {
        let (mut k, init) = boot();
        let fd = k.open(init, "/f", OpenFlags::RDWR, true).unwrap();
        k.set_cloexec(init, fd, true).unwrap();
        let d = k.dup(init, fd).unwrap();
        assert!(!k.process(init).unwrap().fds.get(d).unwrap().cloexec);
        assert!(k.process(init).unwrap().fds.get(fd).unwrap().cloexec);
    }
}
