//! The process control block.
//!
//! A [`Process`] aggregates every piece of state POSIX says fork must
//! duplicate (or deliberately not duplicate): the address space, descriptor
//! table, signal state, threads and their locks, buffered user streams,
//! credentials, limits, working directory and umask. The sheer width of
//! this struct *is* the paper's "fork is no longer simple" argument,
//! rendered as a type.

use crate::atfork::AtforkTable;
use crate::cred::Credentials;
use crate::fdtable::FdTable;
use crate::pid::{Pid, Tid};
use crate::rlimit::RlimitSet;
use crate::signal::SignalState;
use crate::stdio::UserStream;
use crate::sync::LockTable;
use crate::thread::{Thread, ThreadState};
use crate::vfs::Ino;
use fpr_mem::AddressSpace;
use fpr_mem::Vpn;

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Alive (at least one live thread).
    Running,
    /// Exited, awaiting reaping by the parent.
    Zombie(i32),
}

/// Address-space layout summary recorded at exec/spawn time (filled in by
/// the loader; consumed by the security audit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutInfo {
    /// Base VPN of the text segment.
    pub text_base: u64,
    /// Base VPN of the heap.
    pub heap_base: u64,
    /// Base VPN (top) of the main stack.
    pub stack_base: u64,
    /// Base VPN of the mmap arena.
    pub mmap_base: u64,
    /// Bits of randomness that went into this layout.
    pub entropy_bits: u32,
    /// Seed value actually used (for the shared-entropy audit).
    pub aslr_seed: u64,
}

/// Why/how the process's address space is held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceRef {
    /// Owns its address space (the normal case).
    Owned,
    /// Borrowing the parent's space until exec or exit (`vfork`).
    BorrowedFrom(Pid),
}

/// A process control block.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Command name (comm).
    pub name: String,
    /// Lifecycle state.
    pub state: ProcState,
    /// The address space; `None` while borrowed away is not modelled —
    /// instead a vfork child stores [`SpaceRef::BorrowedFrom`] and an empty
    /// placeholder here.
    pub aspace: AddressSpace,
    /// Whether `aspace` is real or borrowed.
    pub space_ref: SpaceRef,
    /// Descriptor table.
    pub fds: FdTable,
    /// Signal dispositions, mask, pending set.
    pub signals: SignalState,
    /// Threads (index 0 is the main thread).
    pub threads: Vec<Thread>,
    /// Userspace locks (allocator, stdio, app).
    pub locks: LockTable,
    /// Buffered user streams (stdio emulation).
    pub streams: Vec<UserStream>,
    /// Credentials.
    pub cred: Credentials,
    /// Resource limits.
    pub rlimits: RlimitSet,
    /// Working directory inode.
    pub cwd: Ino,
    /// File-mode creation mask.
    pub umask: u16,
    /// Layout summary from the last exec (ASLR audit input).
    pub layout: LayoutInfo,
    /// `pthread_atfork` registrations (userspace state, copied by fork,
    /// cleared by exec).
    pub atfork: AtforkTable,
    /// Process group (inherited by fork, reset by setsid).
    pub pgid: crate::pgroup::Pgid,
    /// Session (inherited by fork, reset by setsid).
    pub sid: crate::pgroup::Sid,
    /// Program arguments of the current image.
    pub argv: Vec<String>,
    /// Environment variables of the current image.
    pub envp: std::collections::BTreeMap<String, String>,
    /// Children yet to be reaped or reparented.
    pub children: Vec<Pid>,
    /// Set while a vfork child holds this (parent) process parked.
    pub vfork_children: Vec<Pid>,
    /// True if this process was terminated by the OOM killer.
    pub oom_killed: bool,
    /// OOM badness adjustment, Linux-style: added to the badness score in
    /// pages; [`OOM_SCORE_ADJ_MIN`] makes the process unkillable (used for
    /// warm-pool children that are pure cache and reclaimed by shrinkers
    /// instead).
    pub oom_score_adj: i64,
}

/// `oom_score_adj` value that exempts a process from the OOM killer.
pub const OOM_SCORE_ADJ_MIN: i64 = -1000;

impl Process {
    /// Creates a fresh process shell; the kernel fills in pid/ppid/fds.
    pub fn new(pid: Pid, ppid: Pid, name: impl Into<String>, main_tid: Tid, cwd: Ino) -> Process {
        Process {
            pid,
            ppid,
            name: name.into(),
            state: ProcState::Running,
            aspace: AddressSpace::new(),
            space_ref: SpaceRef::Owned,
            fds: FdTable::new(),
            signals: SignalState::new(),
            threads: vec![Thread::new(main_tid)],
            locks: LockTable::new(),
            streams: Vec::new(),
            cred: Credentials::root(),
            rlimits: RlimitSet::default(),
            cwd,
            umask: 0o022,
            layout: LayoutInfo::default(),
            atfork: AtforkTable::new(),
            pgid: crate::pgroup::Pgid(ppid.0),
            sid: crate::pgroup::Sid(ppid.0),
            argv: Vec::new(),
            envp: std::collections::BTreeMap::new(),
            children: Vec::new(),
            vfork_children: Vec::new(),
            oom_killed: false,
            oom_score_adj: 0,
        }
    }

    /// The main thread's id.
    pub fn main_tid(&self) -> Tid {
        self.threads[0].tid
    }

    /// Finds a thread by id.
    pub fn thread(&self, tid: Tid) -> Option<&Thread> {
        self.threads.iter().find(|t| t.tid == tid)
    }

    /// Finds a thread mutably.
    pub fn thread_mut(&mut self, tid: Tid) -> Option<&mut Thread> {
        self.threads.iter_mut().find(|t| t.tid == tid)
    }

    /// Number of threads that can make progress.
    pub fn schedulable_threads(&self) -> u32 {
        self.threads.iter().filter(|t| t.is_schedulable()).count() as u32
    }

    /// True if the process is a zombie.
    pub fn is_zombie(&self) -> bool {
        matches!(self.state, ProcState::Zombie(_))
    }

    /// Total bytes sitting unflushed in user stream buffers — the data a
    /// fork would duplicate.
    pub fn unflushed_bytes(&self) -> usize {
        self.streams.iter().map(|s| s.pending()).sum()
    }

    /// Parks every thread (used on the vfork parent).
    pub fn park_all_threads(&mut self) {
        for t in &mut self.threads {
            if t.is_schedulable() {
                t.state = ThreadState::VforkParked;
            }
        }
    }

    /// Unparks threads parked by [`Process::park_all_threads`].
    pub fn unpark_all_threads(&mut self) {
        for t in &mut self.threads {
            if t.state == ThreadState::VforkParked {
                t.state = ThreadState::Runnable;
            }
        }
    }

    /// Convenience: resident pages of the owned address space.
    pub fn resident_pages(&self) -> u64 {
        self.aspace.resident_pages()
    }

    /// The heap base VPN recorded by the loader (0 if never exec'd).
    pub fn heap_base(&self) -> Vpn {
        Vpn(self.layout.heap_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Process {
        Process::new(Pid(2), Pid(1), "test", Tid(10), Ino(1))
    }

    #[test]
    fn fresh_process_shape() {
        let p = p();
        assert_eq!(p.main_tid(), Tid(10));
        assert_eq!(p.schedulable_threads(), 1);
        assert!(!p.is_zombie());
        assert_eq!(p.unflushed_bytes(), 0);
        assert_eq!(p.space_ref, SpaceRef::Owned);
    }

    #[test]
    fn park_unpark_roundtrip() {
        let mut p = p();
        p.threads.push(Thread::new(Tid(11)));
        p.park_all_threads();
        assert_eq!(p.schedulable_threads(), 0);
        p.unpark_all_threads();
        assert_eq!(p.schedulable_threads(), 2);
    }

    #[test]
    fn parked_blocked_thread_stays_blocked() {
        let mut p = p();
        p.threads.push(Thread::new(Tid(11)));
        p.threads[1].state = ThreadState::BlockedOnLock(crate::sync::LockId(0));
        p.park_all_threads();
        p.unpark_all_threads();
        assert_eq!(
            p.threads[1].state,
            ThreadState::BlockedOnLock(crate::sync::LockId(0))
        );
        assert_eq!(p.schedulable_threads(), 1);
    }

    #[test]
    fn unflushed_counts_all_streams() {
        use crate::fdtable::Fd;
        use crate::stdio::{BufMode, UserStream};
        let mut p = p();
        let mut s1 = UserStream::new(Fd(1), BufMode::FullyBuffered);
        s1.write(b"abc");
        let mut s2 = UserStream::new(Fd(2), BufMode::FullyBuffered);
        s2.write(b"wxyz");
        p.streams = vec![s1, s2];
        assert_eq!(p.unflushed_bytes(), 7);
    }
}
