//! Interval timers: `alarm(2)` and a minimal tick pump.
//!
//! Timers are yet another POSIX special case in the fork contract: the
//! child does **not** inherit the parent's pending alarms (POSIX lists
//! them among the not-inherited properties) — one more asymmetry the
//! tests pin down.

use crate::error::KResult;
use crate::kernel::Kernel;
use crate::pid::Pid;
use crate::signal::Sig;

/// A pending alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alarm {
    /// Process to signal.
    pub pid: Pid,
    /// Absolute expiry, virtual nanoseconds.
    pub deadline_ns: u64,
}

impl Kernel {
    /// Arms (or disarms, with `None`) an alarm that delivers `SIGALRM`
    /// after `after_us` virtual microseconds. Returns the previous
    /// remaining time in microseconds, like `alarm(2)`.
    pub fn alarm(&mut self, pid: Pid, after_us: Option<u64>) -> KResult<u64> {
        self.ensure_alive(pid)?;
        self.charge_syscall();
        let now = self.clock.now_ns();
        let prev = self
            .alarms
            .iter()
            .find(|a| a.pid == pid)
            .map(|a| a.deadline_ns.saturating_sub(now) / 1_000)
            .unwrap_or(0);
        self.alarms.retain(|a| a.pid != pid);
        if let Some(us) = after_us {
            self.alarms.push(Alarm {
                pid,
                deadline_ns: now + us * 1_000,
            });
        }
        Ok(prev)
    }

    /// Advances the virtual clock by `us` microseconds and delivers any
    /// expired alarms. Returns how many fired.
    pub fn tick_us(&mut self, us: u64) -> usize {
        self.clock.advance_ns(us * 1_000);
        let now = self.clock.now_ns();
        let (due, rest): (Vec<Alarm>, Vec<Alarm>) =
            self.alarms.drain(..).partition(|a| a.deadline_ns <= now);
        self.alarms = rest;
        let mut fired = 0;
        for a in &due {
            if self.kill(a.pid, Sig::Alrm).is_ok() {
                fired += 1;
            }
        }
        fired
    }

    /// Clears `pid`'s alarms (fork children and exiting processes).
    pub fn clear_alarms(&mut self, pid: Pid) {
        self.alarms.retain(|a| a.pid != pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{Disposition, HandlerId};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn alarm_fires_after_deadline() {
        let (mut k, init) = boot();
        let c = k.allocate_process(init, "sleeper").unwrap();
        k.sigaction(c, Sig::Alrm, Disposition::Handler(HandlerId(7)))
            .unwrap();
        k.alarm(c, Some(100)).unwrap();
        assert_eq!(k.tick_us(50), 0, "not yet due");
        assert_eq!(k.tick_us(60), 1, "fires at 110us");
        assert_eq!(k.handler_log, vec![(c, 7)]);
        assert_eq!(k.tick_us(1000), 0, "one-shot");
    }

    #[test]
    fn default_sigalrm_terminates() {
        let (mut k, init) = boot();
        let c = k.allocate_process(init, "victim").unwrap();
        k.alarm(c, Some(10)).unwrap();
        k.tick_us(20);
        assert!(k.process(c).unwrap().is_zombie());
    }

    #[test]
    fn rearm_returns_remaining_and_disarm_works() {
        let (mut k, init) = boot();
        let c = k.allocate_process(init, "t").unwrap();
        assert_eq!(k.alarm(c, Some(1_000)).unwrap(), 0);
        k.tick_us(400);
        let remaining = k.alarm(c, Some(2_000)).unwrap();
        assert_eq!(remaining, 600);
        // Disarm entirely: nothing ever fires.
        assert_eq!(k.alarm(c, None).unwrap(), 2_000);
        assert_eq!(k.tick_us(10_000), 0);
        assert!(!k.process(c).unwrap().is_zombie());
    }

    #[test]
    fn alarms_are_per_process() {
        let (mut k, init) = boot();
        let a = k.allocate_process(init, "a").unwrap();
        let b = k.allocate_process(init, "b").unwrap();
        k.alarm(a, Some(10)).unwrap();
        k.alarm(b, Some(1_000)).unwrap();
        assert_eq!(k.tick_us(20), 1);
        assert!(k.process(a).unwrap().is_zombie());
        assert!(!k.process(b).unwrap().is_zombie());
    }
}
