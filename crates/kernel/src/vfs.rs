//! A small in-memory virtual filesystem.
//!
//! Provides just enough of a file layer for the reproduction: hierarchical
//! directories, regular files with byte contents, path resolution against
//! a working directory, and stable inode numbers that double as the
//! `file_id` used by file-backed memory mappings.

use crate::error::{Errno, KResult};
use std::collections::{BTreeMap, HashMap};

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ino(pub u64);

/// What an inode is.
#[derive(Debug, Clone)]
pub enum InodeKind {
    /// Regular file with byte contents.
    File {
        /// File bytes.
        data: Vec<u8>,
        /// Content generation: 0 at creation, bumped by every write.
        /// Consumers caching derived state (the exec image cache) compare
        /// generations to detect rewrites.
        generation: u64,
    },
    /// Directory mapping names to inodes.
    Dir {
        /// Child entries.
        entries: BTreeMap<String, Ino>,
    },
}

/// An inode: identity plus content.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Stable inode number.
    pub ino: Ino,
    /// File or directory payload.
    pub kind: InodeKind,
    /// Permission bits (simplified: 0oXYZ).
    pub mode: u16,
}

/// The in-memory filesystem.
#[derive(Debug)]
pub struct Vfs {
    inodes: HashMap<Ino, Inode>,
    next: u64,
    root: Ino,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates a filesystem containing only `/`.
    pub fn new() -> Vfs {
        let root = Ino(1);
        let mut inodes = HashMap::new();
        inodes.insert(
            root,
            Inode {
                ino: root,
                kind: InodeKind::Dir {
                    entries: BTreeMap::new(),
                },
                mode: 0o755,
            },
        );
        Vfs {
            inodes,
            next: 2,
            root,
        }
    }

    /// The root directory inode.
    pub fn root(&self) -> Ino {
        self.root
    }

    fn alloc_ino(&mut self) -> Ino {
        let i = Ino(self.next);
        self.next += 1;
        i
    }

    /// Looks up an inode by number.
    pub fn inode(&self, ino: Ino) -> KResult<&Inode> {
        self.inodes.get(&ino).ok_or(Errno::Enoent)
    }

    fn inode_mut(&mut self, ino: Ino) -> KResult<&mut Inode> {
        self.inodes.get_mut(&ino).ok_or(Errno::Enoent)
    }

    /// Resolves `path` (absolute, or relative to `cwd`) to an inode.
    pub fn resolve(&self, path: &str, cwd: Ino) -> KResult<Ino> {
        let (mut cur, rest) = if let Some(r) = path.strip_prefix('/') {
            (self.root, r)
        } else {
            (cwd, path)
        };
        for comp in rest.split('/').filter(|c| !c.is_empty() && *c != ".") {
            let node = self.inode(cur)?;
            let entries = match &node.kind {
                InodeKind::Dir { entries } => entries,
                InodeKind::File { .. } => return Err(Errno::Enotdir),
            };
            cur = *entries.get(comp).ok_or(Errno::Enoent)?;
        }
        Ok(cur)
    }

    /// Splits `path` into (parent inode, final component).
    fn resolve_parent<'p>(&self, path: &'p str, cwd: Ino) -> KResult<(Ino, &'p str)> {
        let trimmed = path.trim_end_matches('/');
        if trimmed.is_empty() {
            return Err(Errno::Eexist); // "/" itself
        }
        let (dir_part, name) = match trimmed.rfind('/') {
            Some(i) => (&trimmed[..i], &trimmed[i + 1..]),
            None => ("", trimmed),
        };
        if name.is_empty() || name == "." {
            return Err(Errno::Einval);
        }
        let parent = if dir_part.is_empty() {
            if path.starts_with('/') {
                self.root
            } else {
                cwd
            }
        } else {
            self.resolve(dir_part, cwd)?
        };
        Ok((parent, name))
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str, cwd: Ino) -> KResult<Ino> {
        fpr_faults::cross(fpr_faults::FaultSite::VfsOp).map_err(|_| Errno::Enomem)?;
        let (parent, name) = self.resolve_parent(path, cwd)?;
        let ino = self.alloc_ino();
        let dir = self.inode_mut(parent)?;
        match &mut dir.kind {
            InodeKind::Dir { entries } => {
                if entries.contains_key(name) {
                    return Err(Errno::Eexist);
                }
                entries.insert(name.to_string(), ino);
            }
            InodeKind::File { .. } => return Err(Errno::Enotdir),
        }
        self.inodes.insert(
            ino,
            Inode {
                ino,
                kind: InodeKind::Dir {
                    entries: BTreeMap::new(),
                },
                mode: 0o755,
            },
        );
        Ok(ino)
    }

    /// Creates a regular file with `data`, failing if it already exists.
    pub fn create(&mut self, path: &str, cwd: Ino, data: Vec<u8>) -> KResult<Ino> {
        fpr_faults::cross(fpr_faults::FaultSite::VfsOp).map_err(|_| Errno::Enomem)?;
        let (parent, name) = self.resolve_parent(path, cwd)?;
        let ino = self.alloc_ino();
        let dir = self.inode_mut(parent)?;
        match &mut dir.kind {
            InodeKind::Dir { entries } => {
                if entries.contains_key(name) {
                    return Err(Errno::Eexist);
                }
                entries.insert(name.to_string(), ino);
            }
            InodeKind::File { .. } => return Err(Errno::Enotdir),
        }
        self.inodes.insert(
            ino,
            Inode {
                ino,
                kind: InodeKind::File {
                    data,
                    generation: 0,
                },
                mode: 0o644,
            },
        );
        Ok(ino)
    }

    /// Removes a file or empty directory.
    pub fn unlink(&mut self, path: &str, cwd: Ino) -> KResult<()> {
        let (parent, name) = self.resolve_parent(path, cwd)?;
        let target = {
            let dir = self.inode(parent)?;
            match &dir.kind {
                InodeKind::Dir { entries } => *entries.get(name).ok_or(Errno::Enoent)?,
                InodeKind::File { .. } => return Err(Errno::Enotdir),
            }
        };
        if let InodeKind::Dir { entries } = &self.inode(target)?.kind {
            if !entries.is_empty() {
                return Err(Errno::Ebusy);
            }
        }
        if let InodeKind::Dir { entries } = &mut self.inode_mut(parent)?.kind {
            entries.remove(name);
        }
        self.inodes.remove(&target);
        Ok(())
    }

    /// Reads up to `len` bytes at `offset` from a regular file.
    pub fn read_at(&self, ino: Ino, offset: u64, len: usize) -> KResult<Vec<u8>> {
        match &self.inode(ino)?.kind {
            InodeKind::File { data, .. } => {
                let start = (offset as usize).min(data.len());
                let end = (start + len).min(data.len());
                Ok(data[start..end].to_vec())
            }
            InodeKind::Dir { .. } => Err(Errno::Eisdir),
        }
    }

    /// Writes `buf` at `offset` into a regular file, extending it with
    /// zeroes if needed. Returns bytes written.
    pub fn write_at(&mut self, ino: Ino, offset: u64, buf: &[u8]) -> KResult<usize> {
        match &mut self.inode_mut(ino)?.kind {
            InodeKind::File { data, generation } => {
                let end = offset as usize + buf.len();
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[offset as usize..end].copy_from_slice(buf);
                *generation += 1;
                Ok(buf.len())
            }
            InodeKind::Dir { .. } => Err(Errno::Eisdir),
        }
    }

    /// Content generation of a regular file: 0 at creation, +1 per write.
    /// Directories and missing inodes report 0.
    pub fn generation(&self, ino: Ino) -> u64 {
        match self.inodes.get(&ino).map(|i| &i.kind) {
            Some(InodeKind::File { generation, .. }) => *generation,
            _ => 0,
        }
    }

    /// Length of a regular file in bytes.
    pub fn len(&self, ino: Ino) -> KResult<u64> {
        match &self.inode(ino)?.kind {
            InodeKind::File { data, .. } => Ok(data.len() as u64),
            InodeKind::Dir { .. } => Err(Errno::Eisdir),
        }
    }

    /// Lists the names in a directory.
    pub fn readdir(&self, ino: Ino) -> KResult<Vec<String>> {
        match &self.inode(ino)?.kind {
            InodeKind::Dir { entries } => Ok(entries.keys().cloned().collect()),
            InodeKind::File { .. } => Err(Errno::Enotdir),
        }
    }

    /// Number of live inodes (including the root).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Vfs {
        Vfs::new()
    }

    #[test]
    fn create_and_resolve_absolute() {
        let mut v = fs();
        v.mkdir("/bin", v.root()).unwrap();
        let f = v.create("/bin/sh", v.root(), b"#!image".to_vec()).unwrap();
        assert_eq!(v.resolve("/bin/sh", v.root()).unwrap(), f);
        assert_eq!(v.read_at(f, 0, 7).unwrap(), b"#!image");
    }

    #[test]
    fn relative_resolution_uses_cwd() {
        let mut v = fs();
        let home = v.mkdir("/home", v.root()).unwrap();
        v.create("/home/notes.txt", v.root(), b"hi".to_vec())
            .unwrap();
        assert!(v.resolve("notes.txt", home).is_ok());
        assert_eq!(v.resolve("notes.txt", v.root()), Err(Errno::Enoent));
        assert!(v.resolve("./notes.txt", home).is_ok());
    }

    #[test]
    fn duplicate_create_is_eexist() {
        let mut v = fs();
        v.create("/a", v.root(), vec![]).unwrap();
        assert_eq!(v.create("/a", v.root(), vec![]), Err(Errno::Eexist));
        assert_eq!(v.mkdir("/a", v.root()), Err(Errno::Eexist));
    }

    #[test]
    fn write_extends_and_reads_back() {
        let mut v = fs();
        let f = v.create("/f", v.root(), vec![]).unwrap();
        v.write_at(f, 4, b"abcd").unwrap();
        assert_eq!(v.len(f).unwrap(), 8);
        assert_eq!(v.read_at(f, 0, 8).unwrap(), b"\0\0\0\0abcd");
        assert_eq!(v.read_at(f, 6, 10).unwrap(), b"cd", "short read at EOF");
    }

    #[test]
    fn generation_bumps_on_every_write_only() {
        let mut v = fs();
        let f = v.create("/prog", v.root(), b"v1".to_vec()).unwrap();
        assert_eq!(v.generation(f), 0);
        v.read_at(f, 0, 2).unwrap();
        assert_eq!(v.generation(f), 0, "reads do not bump");
        v.write_at(f, 0, b"v2").unwrap();
        assert_eq!(v.generation(f), 1);
        v.write_at(f, 1, b"x").unwrap();
        assert_eq!(v.generation(f), 2);
        assert_eq!(v.generation(v.root()), 0, "directories report 0");
    }

    #[test]
    fn unlink_file_and_refuse_nonempty_dir() {
        let mut v = fs();
        v.mkdir("/d", v.root()).unwrap();
        v.create("/d/f", v.root(), vec![]).unwrap();
        assert_eq!(v.unlink("/d", v.root()), Err(Errno::Ebusy));
        v.unlink("/d/f", v.root()).unwrap();
        v.unlink("/d", v.root()).unwrap();
        assert_eq!(v.resolve("/d", v.root()), Err(Errno::Enoent));
        assert_eq!(v.inode_count(), 1);
    }

    #[test]
    fn file_in_path_is_enotdir() {
        let mut v = fs();
        v.create("/f", v.root(), vec![]).unwrap();
        assert_eq!(v.resolve("/f/x", v.root()), Err(Errno::Enotdir));
        assert_eq!(v.create("/f/x", v.root(), vec![]), Err(Errno::Enotdir));
    }

    #[test]
    fn readdir_lists_sorted() {
        let mut v = fs();
        v.create("/b", v.root(), vec![]).unwrap();
        v.create("/a", v.root(), vec![]).unwrap();
        v.mkdir("/c", v.root()).unwrap();
        assert_eq!(v.readdir(v.root()).unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn dir_io_is_rejected() {
        let v = fs();
        assert_eq!(v.read_at(v.root(), 0, 1), Err(Errno::Eisdir));
        assert_eq!(v.len(v.root()), Err(Errno::Eisdir));
    }
}
