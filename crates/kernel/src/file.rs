//! Open file descriptions — the kernel-side objects file descriptors
//! point at.
//!
//! POSIX semantics matter here: `dup` and fork *share* the open file
//! description (hence the shared offset), which is exactly the state the
//! paper counts among fork's implicit copies. The description table is
//! reference counted; descriptors in per-process [`crate::fdtable::FdTable`]s
//! hold the references.

use crate::error::{Errno, KResult};
use crate::pipe::PipeId;
use crate::vfs::Ino;

/// Index of an open file description in the kernel table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OfdId(pub u32);

/// Status flags of an open file description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Opened for reading.
    pub read: bool,
    /// Opened for writing.
    pub write: bool,
    /// Appends seek to EOF before each write.
    pub append: bool,
    /// Non-blocking I/O.
    pub nonblock: bool,
}

impl OpenFlags {
    /// Read-only.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        append: false,
        nonblock: false,
    };
    /// Write-only.
    pub const WRONLY: OpenFlags = OpenFlags {
        read: false,
        write: true,
        append: false,
        nonblock: false,
    };
    /// Read-write.
    pub const RDWR: OpenFlags = OpenFlags {
        read: true,
        write: true,
        append: false,
        nonblock: false,
    };
}

/// The kernel object behind a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileObject {
    /// A VFS inode (regular file or directory).
    Vnode(Ino),
    /// The read end of a pipe.
    PipeRead(PipeId),
    /// The write end of a pipe.
    PipeWrite(PipeId),
    /// The console (a write sink with a capture buffer).
    Tty,
    /// `/dev/null`.
    Null,
}

/// An open file description: object + cursor + flags.
#[derive(Debug, Clone)]
pub struct OpenFile {
    /// The underlying object.
    pub object: FileObject,
    /// Shared file offset (meaningful for vnodes).
    pub offset: u64,
    /// Status flags.
    pub flags: OpenFlags,
    refs: u32,
}

/// Kernel-wide table of open file descriptions.
#[derive(Debug, Default)]
pub struct OfdTable {
    slots: Vec<Option<OpenFile>>,
    free: Vec<u32>,
}

impl OfdTable {
    /// Creates an empty table.
    pub fn new() -> OfdTable {
        OfdTable::default()
    }

    /// Installs a new description with one reference.
    pub fn insert(&mut self, object: FileObject, flags: OpenFlags) -> OfdId {
        let ofd = OpenFile {
            object,
            offset: 0,
            flags,
            refs: 1,
        };
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(ofd);
            OfdId(i)
        } else {
            self.slots.push(Some(ofd));
            OfdId((self.slots.len() - 1) as u32)
        }
    }

    /// Borrows a live description.
    pub fn get(&self, id: OfdId) -> KResult<&OpenFile> {
        self.slots
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(Errno::Ebadf)
    }

    /// Mutably borrows a live description.
    pub fn get_mut(&mut self, id: OfdId) -> KResult<&mut OpenFile> {
        self.slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(Errno::Ebadf)
    }

    /// Adds a reference (dup, fork inheritance, spawn installation).
    pub fn incref(&mut self, id: OfdId) -> KResult<()> {
        self.get_mut(id)?.refs += 1;
        Ok(())
    }

    /// Drops a reference. When the last reference dies, the description is
    /// destroyed and its object returned so the caller can release
    /// object-side state (pipe end counts).
    pub fn decref(&mut self, id: OfdId) -> KResult<Option<FileObject>> {
        let f = self.get_mut(id)?;
        debug_assert!(f.refs > 0);
        f.refs -= 1;
        if f.refs == 0 {
            let obj = f.object;
            self.slots[id.0 as usize] = None;
            self.free.push(id.0);
            Ok(Some(obj))
        } else {
            Ok(None)
        }
    }

    /// Current reference count (test aid).
    pub fn refs(&self, id: OfdId) -> KResult<u32> {
        Ok(self.get(id)?.refs)
    }

    /// Number of live descriptions.
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over live `(id, description)` pairs (invariant checking).
    pub fn iter(&self) -> impl Iterator<Item = (OfdId, &OpenFile)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|f| (OfdId(i as u32), f)))
    }
}

impl OpenFile {
    /// Current reference count.
    pub fn ref_count(&self) -> u32 {
        self.refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = OfdTable::new();
        let id = t.insert(FileObject::Null, OpenFlags::RDWR);
        assert_eq!(t.get(id).unwrap().object, FileObject::Null);
        assert_eq!(t.refs(id), Ok(1));
        assert_eq!(t.live(), 1);
    }

    #[test]
    fn refcounting_destroys_at_zero() {
        let mut t = OfdTable::new();
        let id = t.insert(FileObject::Tty, OpenFlags::WRONLY);
        t.incref(id).unwrap();
        assert_eq!(t.decref(id), Ok(None));
        assert_eq!(t.decref(id), Ok(Some(FileObject::Tty)));
        assert_eq!(t.get(id).err(), Some(Errno::Ebadf));
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let mut t = OfdTable::new();
        let a = t.insert(FileObject::Null, OpenFlags::RDONLY);
        t.decref(a).unwrap();
        let b = t.insert(FileObject::Tty, OpenFlags::WRONLY);
        assert_eq!(a, b, "slot reused");
        assert_eq!(t.get(b).unwrap().object, FileObject::Tty);
    }

    #[test]
    fn shared_offset_visible_through_all_refs() {
        let mut t = OfdTable::new();
        let id = t.insert(FileObject::Vnode(Ino(9)), OpenFlags::RDWR);
        t.incref(id).unwrap();
        t.get_mut(id).unwrap().offset = 100;
        assert_eq!(t.get(id).unwrap().offset, 100);
    }

    #[test]
    fn bad_id_is_ebadf() {
        let mut t = OfdTable::new();
        assert_eq!(t.get(OfdId(3)).err(), Some(Errno::Ebadf));
        assert_eq!(t.incref(OfdId(3)).err(), Some(Errno::Ebadf));
    }
}
