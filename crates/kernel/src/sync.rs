//! Owner-tracked in-process locks, for modelling fork's thread-safety
//! hazard.
//!
//! The paper's sharpest correctness argument: fork snapshots *memory* but
//! only duplicates the *calling thread*. Any lock held by another thread
//! at fork time is copied in its locked state into the child — where the
//! owning thread does not exist, so the lock can never be released. The
//! child deadlocks the first time it touches that lock. [`LockTable`]
//! records ownership so the fork implementation and the auditor can detect
//! exactly this situation.

use crate::error::{Errno, KResult};
use crate::pid::Tid;

/// Identifier of a lock within one process (e.g. the malloc arena lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(pub u32);

/// One mutex with owner tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLock {
    /// Stable identifier.
    pub id: LockId,
    /// Human-readable role (for audit reports): e.g. "malloc-arena".
    pub name_id: u32,
    /// Current owner, if held.
    pub owner: Option<Tid>,
}

/// The set of userspace locks in one process image.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: Vec<SimLock>,
}

/// Well-known lock-name identifiers used by the examples and workloads.
pub mod names {
    /// The allocator arena lock — the classic fork-deadlock culprit.
    pub const MALLOC_ARENA: u32 = 1;
    /// A stdio stream lock.
    pub const STDIO: u32 = 2;
    /// An application lock.
    pub const APP: u32 = 3;
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Registers a lock and returns its id.
    pub fn register(&mut self, name_id: u32) -> LockId {
        let id = LockId(self.locks.len() as u32);
        self.locks.push(SimLock {
            id,
            name_id,
            owner: None,
        });
        id
    }

    /// Acquires `lock` for `tid`.
    ///
    /// Fails with [`Errno::Edeadlk`] if `tid` already owns it (non-recursive)
    /// and [`Errno::Ebusy`] if another thread owns it (the caller decides
    /// whether that means blocking or deadlock).
    pub fn acquire(&mut self, lock: LockId, tid: Tid) -> KResult<()> {
        let l = self.locks.get_mut(lock.0 as usize).ok_or(Errno::Einval)?;
        match l.owner {
            None => {
                l.owner = Some(tid);
                Ok(())
            }
            Some(o) if o == tid => Err(Errno::Edeadlk),
            Some(_) => Err(Errno::Ebusy),
        }
    }

    /// Releases `lock`, which must be owned by `tid`.
    pub fn release(&mut self, lock: LockId, tid: Tid) -> KResult<()> {
        let l = self.locks.get_mut(lock.0 as usize).ok_or(Errno::Einval)?;
        match l.owner {
            Some(o) if o == tid => {
                l.owner = None;
                Ok(())
            }
            _ => Err(Errno::Eperm),
        }
    }

    /// Locks currently held by threads *other than* `survivor` — the set
    /// that becomes permanently stuck in a fork child where only
    /// `survivor` exists.
    pub fn orphaned_after_fork(&self, survivor: Tid) -> Vec<SimLock> {
        self.locks
            .iter()
            .filter(|l| l.owner.map(|o| o != survivor).unwrap_or(false))
            .copied()
            .collect()
    }

    /// Iterates over all locks.
    pub fn iter(&self) -> impl Iterator<Item = &SimLock> {
        self.locks.iter()
    }

    /// Looks up a lock.
    pub fn get(&self, lock: LockId) -> Option<&SimLock> {
        self.locks.get(lock.0 as usize)
    }

    /// All lock ids (fork uses this to remap the calling thread's
    /// holdings onto the child's main thread).
    pub fn iter_ids(&self) -> Vec<LockId> {
        self.locks.iter().map(|l| l.id).collect()
    }

    /// Current owner of `lock`, if held.
    pub fn owner_of(&self, lock: LockId) -> Option<Tid> {
        self.locks.get(lock.0 as usize).and_then(|l| l.owner)
    }

    /// Forcibly rewrites a lock's owner (fork's thread remap; not a
    /// synchronisation operation).
    pub fn set_owner(&mut self, lock: LockId, owner: Option<Tid>) {
        if let Some(l) = self.locks.get_mut(lock.0 as usize) {
            l.owner = owner;
        }
    }

    /// Number of registered locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True if no locks are registered.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut t = LockTable::new();
        let l = t.register(names::APP);
        t.acquire(l, Tid(1)).unwrap();
        assert_eq!(t.get(l).unwrap().owner, Some(Tid(1)));
        t.release(l, Tid(1)).unwrap();
        assert_eq!(t.get(l).unwrap().owner, None);
    }

    #[test]
    fn recursive_acquire_is_deadlock() {
        let mut t = LockTable::new();
        let l = t.register(names::APP);
        t.acquire(l, Tid(1)).unwrap();
        assert_eq!(t.acquire(l, Tid(1)), Err(Errno::Edeadlk));
    }

    #[test]
    fn contended_acquire_is_busy() {
        let mut t = LockTable::new();
        let l = t.register(names::MALLOC_ARENA);
        t.acquire(l, Tid(1)).unwrap();
        assert_eq!(t.acquire(l, Tid(2)), Err(Errno::Ebusy));
    }

    #[test]
    fn release_by_non_owner_is_eperm() {
        let mut t = LockTable::new();
        let l = t.register(names::APP);
        t.acquire(l, Tid(1)).unwrap();
        assert_eq!(t.release(l, Tid(2)), Err(Errno::Eperm));
        assert_eq!(t.release(l, Tid(1)), Ok(()));
        assert_eq!(t.release(l, Tid(1)), Err(Errno::Eperm), "already free");
    }

    #[test]
    fn orphaned_after_fork_finds_other_owners() {
        let mut t = LockTable::new();
        let a = t.register(names::MALLOC_ARENA);
        let b = t.register(names::STDIO);
        let c = t.register(names::APP);
        t.acquire(a, Tid(2)).unwrap(); // other thread: orphaned
        t.acquire(b, Tid(1)).unwrap(); // forking thread: survives
        let _ = c; // free: fine
        let orphans = t.orphaned_after_fork(Tid(1));
        assert_eq!(orphans.len(), 1);
        assert_eq!(orphans[0].id, a);
        assert_eq!(orphans[0].name_id, names::MALLOC_ARENA);
    }
}
