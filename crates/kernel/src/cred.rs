//! Process credentials: user/group IDs and a small capability set.
//!
//! Fork copies credentials wholesale — one of the paper's security
//! complaints (the child inherits privilege it may not need). The
//! cross-process API can instead start a child with reduced credentials.


/// Capability bits (a deliberately small subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Caps(pub u32);

impl Caps {
    /// Override file permission checks.
    pub const DAC_OVERRIDE: Caps = Caps(1 << 0);
    /// Send signals to arbitrary processes.
    pub const KILL: Caps = Caps(1 << 1);
    /// Exceed resource limits.
    pub const SYS_RESOURCE: Caps = Caps(1 << 2);
    /// Change credentials.
    pub const SETUID: Caps = Caps(1 << 3);

    /// The empty capability set.
    pub const fn none() -> Caps {
        Caps(0)
    }

    /// Full capabilities (root).
    pub const fn all() -> Caps {
        Caps(0b1111)
    }

    /// Returns true if every bit of `other` is held.
    pub const fn has(self, other: Caps) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns the union of two sets.
    pub const fn union(self, other: Caps) -> Caps {
        Caps(self.0 | other.0)
    }

    /// Removes the bits of `other`.
    pub const fn drop(self, other: Caps) -> Caps {
        Caps(self.0 & !other.0)
    }

    /// Number of capabilities held.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }
}

/// Credentials of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Credentials {
    /// Real user ID.
    pub uid: u32,
    /// Effective user ID.
    pub euid: u32,
    /// Real group ID.
    pub gid: u32,
    /// Effective group ID.
    pub egid: u32,
    /// Capability set.
    pub caps: Caps,
}

impl Credentials {
    /// Root credentials with all capabilities.
    pub fn root() -> Credentials {
        Credentials {
            uid: 0,
            euid: 0,
            gid: 0,
            egid: 0,
            caps: Caps::all(),
        }
    }

    /// Unprivileged user credentials.
    pub fn user(uid: u32, gid: u32) -> Credentials {
        Credentials {
            uid,
            euid: uid,
            gid,
            egid: gid,
            caps: Caps::none(),
        }
    }

    /// Returns true if the credentials carry root or the given capability.
    pub fn can(self, cap: Caps) -> bool {
        self.euid == 0 || self.caps.has(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_can_everything() {
        let r = Credentials::root();
        assert!(r.can(Caps::KILL));
        assert!(r.can(Caps::SETUID));
        assert_eq!(r.caps.count(), 4);
    }

    #[test]
    fn user_without_caps_cannot() {
        let u = Credentials::user(1000, 1000);
        assert!(!u.can(Caps::KILL));
        assert_eq!(u.caps.count(), 0);
    }

    #[test]
    fn cap_algebra() {
        let c = Caps::KILL.union(Caps::SETUID);
        assert!(c.has(Caps::KILL));
        assert!(!c.has(Caps::DAC_OVERRIDE));
        let d = c.drop(Caps::KILL);
        assert!(!d.has(Caps::KILL));
        assert!(d.has(Caps::SETUID));
    }

    #[test]
    fn user_with_explicit_cap() {
        let mut u = Credentials::user(1000, 1000);
        u.caps = u.caps.union(Caps::KILL);
        assert!(u.can(Caps::KILL));
        assert!(!u.can(Caps::SYS_RESOURCE));
    }
}
