//! Process groups and sessions — more state fork silently inherits.
//!
//! POSIX job control hangs off two more PCB fields that fork copies and
//! `setsid` resets: the process group (signal-broadcast domain) and the
//! session. They matter here because `kill(-pgid)` is how shells signal
//! pipelines — and because they are yet another row in the "what fork
//! copies" inventory.

use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::pid::Pid;
use crate::signal::Sig;

/// A process-group identifier (the PID of the group leader).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pgid(pub u32);

/// A session identifier (the PID of the session leader).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sid(pub u32);

impl Kernel {
    /// `setpgid(pid, pgid)`: moves `pid` into the group `pgid` (0 = its
    /// own new group). Only a process or its parent may move it, and only
    /// within the same session.
    pub fn setpgid(&mut self, caller: Pid, pid: Pid, pgid: Option<Pgid>) -> KResult<()> {
        self.ensure_alive(pid)?;
        let target_sid = self.process(pid)?.sid;
        if caller != pid && self.process(pid)?.ppid != caller {
            return Err(Errno::Eperm);
        }
        let new = pgid.unwrap_or(Pgid(pid.0));
        // The target group must exist within the same session (or be the
        // process's own new group).
        if new != Pgid(pid.0) {
            let exists = self
                .pids()
                .into_iter()
                .filter_map(|q| self.process(q).ok())
                .any(|q| q.pgid == new && q.sid == target_sid);
            if !exists {
                return Err(Errno::Eperm);
            }
        }
        self.process_mut(pid)?.pgid = new;
        Ok(())
    }

    /// `getpgid(pid)`.
    pub fn getpgid(&self, pid: Pid) -> KResult<Pgid> {
        Ok(self.process(pid)?.pgid)
    }

    /// `setsid()`: makes `pid` the leader of a new session and group.
    /// Fails if it is already a group leader (POSIX rule).
    pub fn setsid(&mut self, pid: Pid) -> KResult<Sid> {
        self.ensure_alive(pid)?;
        let p = self.process(pid)?;
        if p.pgid == Pgid(pid.0) {
            return Err(Errno::Eperm);
        }
        let p = self.process_mut(pid)?;
        p.pgid = Pgid(pid.0);
        p.sid = Sid(pid.0);
        Ok(Sid(pid.0))
    }

    /// `kill(-pgid, sig)`: signals every member of the group.
    pub fn kill_pgroup(&mut self, pgid: Pgid, sig: Sig) -> KResult<usize> {
        let members: Vec<Pid> = self
            .pids()
            .into_iter()
            .filter(|q| {
                self.process(*q)
                    .map(|p| p.pgid == pgid && !p.is_zombie())
                    .unwrap_or(false)
            })
            .collect();
        if members.is_empty() {
            return Err(Errno::Esrch);
        }
        let n = members.len();
        for m in members {
            self.kill(m, sig)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn children_inherit_group_via_allocate() {
        let (mut k, init) = boot();
        let c = k.allocate_process(init, "c").unwrap();
        assert_eq!(k.getpgid(c).unwrap(), k.getpgid(init).unwrap());
    }

    #[test]
    fn setpgid_own_group_and_join() {
        let (mut k, init) = boot();
        let a = k.allocate_process(init, "a").unwrap();
        let b = k.allocate_process(init, "b").unwrap();
        // a leads a new group; b joins it (moved by the parent).
        k.setpgid(a, a, None).unwrap();
        assert_eq!(k.getpgid(a).unwrap(), Pgid(a.0));
        k.setpgid(init, b, Some(Pgid(a.0))).unwrap();
        assert_eq!(k.getpgid(b).unwrap(), Pgid(a.0));
    }

    #[test]
    fn setpgid_by_stranger_is_eperm() {
        let (mut k, init) = boot();
        let a = k.allocate_process(init, "a").unwrap();
        let stranger = k.allocate_process(init, "s").unwrap();
        assert_eq!(k.setpgid(stranger, a, None), Err(Errno::Eperm));
    }

    #[test]
    fn setsid_detaches_and_group_leader_cannot() {
        let (mut k, init) = boot();
        let a = k.allocate_process(init, "a").unwrap();
        let sid = k.setsid(a).unwrap();
        assert_eq!(sid, Sid(a.0));
        assert_eq!(k.getpgid(a).unwrap(), Pgid(a.0));
        // Now a group leader: a second setsid fails.
        assert_eq!(k.setsid(a), Err(Errno::Eperm));
    }

    #[test]
    fn kill_pgroup_signals_all_members() {
        let (mut k, init) = boot();
        let a = k.allocate_process(init, "a").unwrap();
        k.setpgid(a, a, None).unwrap();
        let b = k.allocate_process(init, "b").unwrap();
        k.setpgid(init, b, Some(Pgid(a.0))).unwrap();
        let other = k.allocate_process(init, "other").unwrap();
        let n = k.kill_pgroup(Pgid(a.0), Sig::Term).unwrap();
        assert_eq!(n, 2);
        assert!(k.process(a).unwrap().is_zombie());
        assert!(k.process(b).unwrap().is_zombie());
        assert!(
            !k.process(other).unwrap().is_zombie(),
            "outsiders untouched"
        );
        assert_eq!(
            k.kill_pgroup(Pgid(a.0), Sig::Term),
            Err(Errno::Esrch),
            "group emptied"
        );
    }
}
