//! Memory-pressure reclaim: the shrinker registry and the kernel-driven
//! reclaim pass.
//!
//! The paper's overcommit section observes that fork-style memory
//! accounting makes exhaustion arrive as an OOM kill "at the worst
//! possible time". This module gives the kernel a gentler first response:
//! subsystems that hold *reclaimable* memory — the exec image cache and
//! the warm-child pool from the spawn fast path — register a [`Shrinker`]
//! and the kernel asks them to give frames back before anyone is killed.
//! The cost of reclaim is degraded spawn latency (back toward the classic
//! path), not a dead process.
//!
//! ## Transactionality
//!
//! A reclaim pass must be safe to inject faults into: the faultsweep
//! acceptance for this subsystem is *kernel at baseline after every
//! injection*. Partial reclaim (shrinker A freed frames, then shrinker
//! B's fault site failed) would leave the machine changed-but-Err, which
//! the sweeps would flag as a leak of intent if not of frames. So
//! [`Kernel::reclaim`] is two-phase: it first crosses **every**
//! participating shrinker's fault site, and only when all crossings
//! survive does any shrinker mutate. An injected failure therefore always
//! aborts the pass before the first freed frame.
//!
//! ## Re-entrancy
//!
//! Shrinkers live above the kernel (`fpr-exec`, `fpr-api`) and are shared
//! via `Arc<Mutex<…>>` (the registry is part of the kernel's `Send`
//! surface); the kernel holds only [`Weak`] references, so dropping the
//! owning subsystem (e.g. `Os::disable_spawn_fastpath`) unregisters
//! automatically. Direct reclaim can fire while the fast path itself
//! holds the cache lock (spawn under pressure); `try_lock` skips busy
//! shrinkers instead of deadlocking.
//!
//! On the SMP machine a busy shrinker usually means *another cell* is
//! mid-spawn, and that window is short — so the skip is softened into a
//! bounded retry: up to [`SHRINKER_LOCK_ATTEMPTS`] `try_lock` polls with
//! a deterministically jittered virtual-cycle pause between them (seeded
//! from the pass counter and shrinker index, so two cells polling the
//! same shrinker desynchronise instead of strobing in lockstep). The
//! single-cell kernel keeps exactly one attempt: no retry, no charged
//! pause, byte-identical replay.

use crate::error::KResult;
use crate::kernel::Kernel;
use fpr_faults::FaultSite;
use fpr_mem::PressureLevel;
use fpr_trace::{metrics, sink};
use std::sync::{Arc, Mutex, Weak};

/// A subsystem that can give frames back to the kernel under memory
/// pressure.
pub trait Shrinker {
    /// Stable name for metrics and traces.
    fn name(&self) -> &'static str;

    /// The fault site a reclaim pass crosses on this shrinker's behalf
    /// *before* any shrinker mutates (see the module docs).
    fn fault_site(&self) -> FaultSite;

    /// Upper bound on frames this shrinker could free right now. A zero
    /// answer excludes it from the pass (and from fault crossings).
    fn reclaimable(&self, kernel: &Kernel) -> u64;

    /// Frees up to `target` frames, returning how many were freed. Must
    /// not cross fault sites (the pass already did) and must leave its
    /// subsystem consistent at every return.
    fn shrink(&mut self, kernel: &mut Kernel, target: u64) -> KResult<u64>;
}

/// Strong handle to a registered shrinker; the owning subsystem keeps
/// this alive, the kernel only holds a [`Weak`].
pub type ShrinkerHandle = Arc<Mutex<dyn Shrinker + Send>>;

/// `try_lock` polls per busy shrinker on the SMP machine before a pass
/// gives up on it (single-cell kernels always use exactly one).
pub const SHRINKER_LOCK_ATTEMPTS: u32 = 3;

/// Base virtual-cycle pause between shrinker lock polls; the actual
/// pause is this plus a deterministic jitter in `[0, base)`.
pub const SHRINKER_RETRY_BASE_CYCLES: u64 = 200;

/// SplitMix64 finalizer: decorrelates (pass, shrinker, attempt) into a
/// jitter so concurrent cells don't re-poll a busy lock in lockstep.
fn retry_jitter(pass: u64, shrinker: u64, attempt: u64) -> u64 {
    let mut z = pass
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(shrinker.rotate_left(32))
        .wrapping_add(attempt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % SHRINKER_RETRY_BASE_CYCLES
}

/// Cumulative reclaim statistics, for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Reclaim passes that ran at least one shrinker.
    pub passes: u64,
    /// Frames freed by shrinkers, cumulative.
    pub frames_reclaimed: u64,
    /// Passes aborted by an injected fault before any mutation.
    pub aborted_passes: u64,
    /// Swap-out passes that evicted at least one page.
    pub swap_out_passes: u64,
    /// Pages evicted to the swap device, cumulative.
    pub pages_swapped_out: u64,
    /// Swap-out passes aborted by an injected fault, byte-identically.
    pub aborted_swap_passes: u64,
}

impl Kernel {
    /// Registers a shrinker. The kernel keeps a weak reference: dropping
    /// every strong handle unregisters it on the next pass.
    pub fn register_shrinker(&mut self, shrinker: &ShrinkerHandle) {
        self.shrinkers.push(Arc::downgrade(shrinker));
    }

    /// Drops every registered shrinker (the E12 baseline arm: reclaimable
    /// frames sit pinned while the OOM killer picks victims).
    pub fn clear_shrinkers(&mut self) {
        self.shrinkers.clear();
    }

    /// Number of currently live (upgradable) shrinkers.
    pub fn live_shrinker_count(&mut self) -> usize {
        self.shrinkers.retain(|w| w.strong_count() > 0);
        self.shrinkers.len()
    }

    /// The machine's current memory-pressure level.
    pub fn memory_pressure(&self) -> PressureLevel {
        self.phys.pressure()
    }

    /// Runs a reclaim pass asking registered shrinkers for `target`
    /// frames, LRU-first within each shrinker. Returns the number of
    /// frames actually freed (possibly less than `target`, possibly 0).
    ///
    /// Two-phase (see module docs): every participating shrinker's fault
    /// site is crossed before any shrinker mutates, so an `Err` from this
    /// function always leaves the kernel byte-identical to before the
    /// call.
    pub fn reclaim(&mut self, target: u64) -> KResult<u64> {
        if target == 0 {
            return Ok(0);
        }
        self.shrinkers.retain(|w| w.strong_count() > 0);
        if self.shrinkers.is_empty() {
            return Ok(0);
        }
        let handles: Vec<ShrinkerHandle> =
            self.shrinkers.iter().filter_map(Weak::upgrade).collect();
        // Phase 0: who can participate? Busy shrinkers (the fast path is
        // mid-spawn holding the lock) and empty ones sit the pass out —
        // after a bounded, jittered re-poll on the SMP machine, where
        // "busy" usually means another cell's short spawn window.
        let attempts = if self.pid_table.is_some() {
            SHRINKER_LOCK_ATTEMPTS
        } else {
            1
        };
        let pass_key = self.reclaim_stats.passes + self.reclaim_stats.aborted_passes;
        let mut ready: Vec<ShrinkerHandle> = Vec::new();
        for (idx, h) in handles.into_iter().enumerate() {
            let mut can = false;
            for attempt in 0..attempts {
                match h.try_lock() {
                    Ok(guard) => {
                        can = guard.reclaimable(self) > 0;
                        break;
                    }
                    Err(_) if attempt + 1 < attempts => {
                        let pause = SHRINKER_RETRY_BASE_CYCLES
                            + retry_jitter(pass_key, idx as u64, u64::from(attempt));
                        self.cycles.charge(pause);
                        metrics::incr("kernel.reclaim.lock_retry");
                    }
                    Err(_) => {
                        metrics::incr("kernel.reclaim.lock_skip");
                    }
                }
            }
            if can {
                ready.push(h);
            }
        }
        if ready.is_empty() {
            return Ok(0);
        }
        // Phase 1: cross every fault site before any mutation.
        for h in &ready {
            let site = h.lock().unwrap_or_else(|p| p.into_inner()).fault_site();
            if let Err(e) = fpr_faults::cross(site).map_err(|_| crate::error::Errno::Enomem) {
                self.reclaim_stats.aborted_passes += 1;
                metrics::incr("kernel.reclaim.aborted");
                return Err(e);
            }
        }
        // Phase 2: shrink until the target is met or everyone is empty.
        sink::span_begin("reclaim", "kernel", self.cycles.total());
        let stall_start = self.cycles.total();
        let mut freed = 0u64;
        for h in &ready {
            if freed >= target {
                break;
            }
            let got = {
                let mut guard = h.lock().unwrap_or_else(|p| p.into_inner());
                let got = guard.shrink(self, target - freed);
                metrics::add(
                    match guard.name() {
                        "warm_pool" => "kernel.reclaim.pool_frames",
                        _ => "kernel.reclaim.cache_frames",
                    },
                    *got.as_ref().unwrap_or(&0),
                );
                got
            };
            match got {
                Ok(n) => freed += n,
                Err(e) => {
                    sink::span_end("reclaim", self.cycles.total());
                    return Err(e);
                }
            }
        }
        self.reclaim_stats.passes += 1;
        self.reclaim_stats.frames_reclaimed += freed;
        let stalled = self.cycles.total() - stall_start;
        self.phys.note_stall(stalled);
        metrics::incr("kernel.reclaim.passes");
        metrics::add("kernel.reclaim.frames", freed);
        metrics::observe("kernel.reclaim.stall_cycles", stalled);
        sink::span_end("reclaim", self.cycles.total());
        Ok(freed)
    }

    /// Background-style pressure balancing (kswapd): if free frames have
    /// dropped below the low watermark and shrinkers are registered,
    /// reclaims up to the high watermark. Zero cost and zero effect when
    /// there is no pressure or nothing registered — callers may invoke it
    /// freely on hot paths.
    ///
    /// Injected faults during the pass are swallowed here (background
    /// reclaim failing must not fail the foreground operation); use
    /// [`Kernel::reclaim`] directly to observe them.
    pub fn balance_pressure(&mut self) -> u64 {
        if self.shrinkers.is_empty() && !self.phys.swap().enabled() {
            return 0;
        }
        if self.phys.free_frames() >= self.phys.watermarks().low {
            return 0;
        }
        let target = self.phys.reclaim_target();
        let mut freed = self.reclaim(target).unwrap_or(0);
        if freed < target && self.swap_could_help() {
            freed += self.swap_out_pass(target - freed).unwrap_or(0);
        }
        freed
    }

    /// The reclaim tier *below* the shrinkers: evicts sole-owner private
    /// anonymous pages to the swap device, clean pages first. Runs only
    /// after cache/pool shrinking has come up short, and before anyone
    /// considers the OOM killer.
    ///
    /// Two-phase like [`Kernel::reclaim`]: the pass-level
    /// [`FaultSite::SwapOut`] site is crossed before any mutation, and
    /// each page's [`FaultSite::SwapSlotAlloc`] crossing happens while
    /// slots are being reserved — an injected failure there returns every
    /// already-reserved slot, so an `Err` always leaves the kernel
    /// byte-identical. Only after every slot is held does the infallible
    /// commit rewrite PTEs, release frames, and issue one batched TLB
    /// shootdown.
    pub fn swap_out_pass(&mut self, target: u64) -> KResult<u64> {
        let budget = target.min(self.phys.swap().free_slots());
        if budget == 0 {
            return Ok(0);
        }
        // Phase 0: gather eviction candidates across live processes.
        let mut work: Vec<(crate::pid::Pid, fpr_mem::Vpn)> = Vec::new();
        let pids: Vec<crate::pid::Pid> = self.procs.keys().copied().collect();
        for pid in pids {
            let room = budget as usize - work.len();
            if room == 0 {
                break;
            }
            let p = &self.procs[&pid];
            if p.is_zombie() || p.space_ref != crate::task::SpaceRef::Owned {
                continue;
            }
            for vpn in p.aspace.swap_out_candidates(&self.phys, room) {
                work.push((pid, vpn));
            }
        }
        if work.is_empty() {
            return Ok(0);
        }
        // Phase 1: the pass-level fault site, before any mutation.
        if fpr_faults::cross(FaultSite::SwapOut).is_err() {
            self.reclaim_stats.aborted_swap_passes += 1;
            metrics::incr("kernel.swap.aborted");
            return Err(crate::error::Errno::Enomem);
        }
        // Phase 2: reserve one slot per page (each crossing
        // SwapSlotAlloc); an injected failure unwinds every reservation.
        sink::span_begin("swap_out", "kernel", self.cycles.total());
        let stall_start = self.cycles.total();
        let mut reserved: Vec<(crate::pid::Pid, fpr_mem::Vpn, u64)> = Vec::new();
        for (pid, vpn) in work {
            let pte = self.procs[&pid]
                .aspace
                .translate(vpn)
                .expect("candidate just enumerated");
            let stamp = self.phys.content(pte.pfn).expect("candidate frame live");
            match self.phys.swap_out_page(stamp, &mut self.cycles) {
                Ok(slot) => reserved.push((pid, vpn, slot)),
                Err(_) => {
                    for (_, _, slot) in reserved {
                        self.phys.swap_mut().unalloc_slot(slot);
                    }
                    self.reclaim_stats.aborted_swap_passes += 1;
                    metrics::incr("kernel.swap.aborted");
                    sink::span_end("swap_out", self.cycles.total());
                    return Err(crate::error::Errno::Enomem);
                }
            }
        }
        // Phase 3: infallible commit — PTE rewrites, frame releases, and
        // one batched shootdown for every stale translation at once.
        let evicted = reserved.len() as u64;
        let mut max_cpus = 0u32;
        let mut affected: Vec<crate::pid::Pid> = Vec::new();
        for (pid, vpn, slot) in reserved {
            let Kernel {
                phys,
                cycles,
                procs,
                ..
            } = self;
            let p = procs.get_mut(&pid).expect("candidate process live");
            p.aspace.swap_out_commit(vpn, slot, phys, cycles);
            if affected.last() != Some(&pid) {
                affected.push(pid);
            }
        }
        for pid in affected {
            max_cpus = max_cpus.max(self.cpus_running(pid));
        }
        let cost = self.phys.cost().clone();
        self.tlb.shootdown(max_cpus, &mut self.cycles, &cost);
        self.reclaim_stats.swap_out_passes += 1;
        self.reclaim_stats.pages_swapped_out += evicted;
        let stalled = self.cycles.total() - stall_start;
        self.phys.note_stall(stalled);
        metrics::add("kernel.swap.out_pages", evicted);
        metrics::observe("kernel.swap.stall_cycles", stalled);
        sink::span_end("swap_out", self.cycles.total());
        Ok(evicted)
    }

    /// True when the swap tier could make progress: the device has free
    /// slots, there is real pressure, and some live process owns an
    /// evictable page.
    pub fn swap_could_help(&mut self) -> bool {
        if self.phys.swap().free_slots() == 0 {
            return false;
        }
        if self.phys.pressure() == PressureLevel::None {
            return false;
        }
        self.procs.values().any(|p| {
            !p.is_zombie()
                && p.space_ref == crate::task::SpaceRef::Owned
                && !p.aspace.swap_out_candidates(&self.phys, 1).is_empty()
        })
    }

    /// True when a failed allocation is worth retrying after reclaim:
    /// there is real pressure and at least one live shrinker with frames
    /// to give. Used by direct-reclaim call sites and by
    /// `fpr-api::retry_with_backoff` as backpressure.
    pub fn reclaim_could_help(&mut self) -> bool {
        if self.live_shrinker_count() == 0 {
            return false;
        }
        if self.phys.pressure() == PressureLevel::None {
            return false;
        }
        let handles: Vec<ShrinkerHandle> =
            self.shrinkers.iter().filter_map(Weak::upgrade).collect();
        handles.iter().any(|h| match h.try_lock() {
            Ok(guard) => guard.reclaimable(self) > 0,
            Err(_) => false,
        })
    }

    /// Cumulative reclaim statistics.
    pub fn reclaim_stats(&self) -> ReclaimStats {
        self.reclaim_stats
    }

    /// Direct reclaim on an allocation failure: shrinks caches first,
    /// then falls through to the swap tier if the shrinkers came up
    /// short, returning true when any frames were actually freed — the
    /// caller's cue to retry the failed operation exactly once. The OOM
    /// killer is never invoked from here; it remains the policy of the
    /// layer above, and with a working swap tier it fires only when swap
    /// is full *and* this path returns false.
    ///
    /// The pressure gates matter for fault injection: an *injected*
    /// `ENOMEM` in an unpressured world must surface to its sweep, not be
    /// papered over by a retry.
    pub(crate) fn direct_reclaim(&mut self) -> bool {
        let target = self.phys.reclaim_target().max(1);
        let mut freed = 0;
        if self.reclaim_could_help() {
            metrics::incr("kernel.reclaim.direct");
            freed = self.reclaim(target).unwrap_or(0);
        }
        if freed < target && self.swap_could_help() {
            metrics::incr("kernel.swap.direct");
            freed += self.swap_out_pass(target - freed).unwrap_or(0);
        }
        freed > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::MachineConfig;
    use fpr_faults::FaultPlan;

    /// A test shrinker over a bag of frames the kernel allocated for it.
    struct FrameBag {
        frames: Vec<fpr_mem::Pfn>,
    }

    impl Shrinker for FrameBag {
        fn name(&self) -> &'static str {
            "frame_bag"
        }
        fn fault_site(&self) -> FaultSite {
            FaultSite::ReclaimShrink
        }
        fn reclaimable(&self, _k: &Kernel) -> u64 {
            self.frames.len() as u64
        }
        fn shrink(&mut self, k: &mut Kernel, target: u64) -> KResult<u64> {
            let mut freed = 0;
            while freed < target {
                let Some(f) = self.frames.pop() else { break };
                k.phys.dec_ref(f, &mut k.cycles).map_err(|_| crate::error::Errno::Enomem)?;
                freed += 1;
            }
            Ok(freed)
        }
    }

    fn small_kernel(frames: u64) -> Kernel {
        Kernel::new(MachineConfig {
            frames,
            ..MachineConfig::default()
        })
    }

    fn bag_with(k: &mut Kernel, n: usize) -> Arc<Mutex<FrameBag>> {
        let mut frames = Vec::new();
        for _ in 0..n {
            frames.push(k.phys.alloc_zeroed(&mut k.cycles).unwrap());
        }
        Arc::new(Mutex::new(FrameBag { frames }))
    }

    #[test]
    fn reclaim_frees_up_to_target_and_counts() {
        let mut k = small_kernel(64);
        let bag = bag_with(&mut k, 16);
        k.register_shrinker(&(bag.clone() as ShrinkerHandle));
        assert_eq!(k.reclaim(10), Ok(10));
        assert_eq!(bag.lock().unwrap().frames.len(), 6);
        assert_eq!(k.reclaim_stats().frames_reclaimed, 10);
        assert_eq!(k.reclaim_stats().passes, 1);
    }

    #[test]
    fn reclaim_with_no_shrinkers_is_free_and_zero() {
        let mut k = small_kernel(64);
        let before = k.cycles.total();
        assert_eq!(k.reclaim(100), Ok(0));
        assert_eq!(k.cycles.total(), before);
        assert_eq!(k.reclaim_stats(), ReclaimStats::default());
    }

    #[test]
    fn dropping_the_handle_unregisters() {
        let mut k = small_kernel(64);
        let bag = bag_with(&mut k, 4);
        k.register_shrinker(&(bag.clone() as ShrinkerHandle));
        assert_eq!(k.live_shrinker_count(), 1);
        // Give the frames back so dropping the bag doesn't leak them.
        assert_eq!(k.reclaim(4), Ok(4));
        drop(bag);
        assert_eq!(k.live_shrinker_count(), 0);
        assert_eq!(k.reclaim(10), Ok(0));
    }

    #[test]
    fn busy_shrinker_is_skipped_not_deadlocked() {
        let mut k = small_kernel(64);
        let bag = bag_with(&mut k, 4);
        k.register_shrinker(&(bag.clone() as ShrinkerHandle));
        let guard = bag.lock().unwrap(); // the subsystem is mid-operation
        assert_eq!(k.reclaim(4), Ok(0));
        drop(guard);
        assert_eq!(k.reclaim(4), Ok(4));
    }

    #[test]
    fn retry_jitter_is_deterministic_and_bounded() {
        for pass in 0..4u64 {
            for idx in 0..3u64 {
                for attempt in 0..2u64 {
                    let a = retry_jitter(pass, idx, attempt);
                    let b = retry_jitter(pass, idx, attempt);
                    assert_eq!(a, b, "same key must jitter identically");
                    assert!(a < SHRINKER_RETRY_BASE_CYCLES);
                }
            }
        }
        // Neighbouring keys decorrelate (no lockstep re-polling).
        let spread: std::collections::BTreeSet<u64> =
            (0..16u64).map(|i| retry_jitter(0, i, 0)).collect();
        assert!(spread.len() > 8, "jitter collapsed: {spread:?}");
    }

    #[test]
    fn single_cell_busy_shrinker_costs_no_retry_cycles() {
        let mut k = small_kernel(64);
        let bag = bag_with(&mut k, 4);
        k.register_shrinker(&(bag.clone() as ShrinkerHandle));
        let guard = bag.lock().unwrap();
        let before = k.cycles.total();
        assert_eq!(k.reclaim(4), Ok(0));
        assert_eq!(
            k.cycles.total(),
            before,
            "one attempt, no pause: the single-cell path replays byte-identically"
        );
        drop(guard);
    }

    #[test]
    fn smp_busy_shrinker_pays_a_bounded_deterministic_pause() {
        let cfg = MachineConfig {
            frames: 256,
            ..MachineConfig::default()
        };
        let shared = crate::kernel::SmpShared::new(&cfg, 1);
        let mut k = Kernel::new_smp(cfg, &shared, 0);
        let bag = bag_with(&mut k, 4);
        k.register_shrinker(&(bag.clone() as ShrinkerHandle));
        let guard = bag.lock().unwrap();
        let polls = u64::from(SHRINKER_LOCK_ATTEMPTS - 1);

        let before = k.cycles.total();
        assert_eq!(k.reclaim(4), Ok(0), "still skipped, never deadlocked");
        let first = k.cycles.total() - before;
        assert!(
            first >= polls * SHRINKER_RETRY_BASE_CYCLES
                && first < polls * 2 * SHRINKER_RETRY_BASE_CYCLES,
            "pause {first} outside [{}, {})",
            polls * SHRINKER_RETRY_BASE_CYCLES,
            polls * 2 * SHRINKER_RETRY_BASE_CYCLES
        );
        // A skipped pass doesn't advance the pass counter, so the same
        // key replays the same jitter: determinism is observable.
        let before = k.cycles.total();
        assert_eq!(k.reclaim(4), Ok(0));
        assert_eq!(k.cycles.total() - before, first);

        drop(guard);
        assert_eq!(k.reclaim(4), Ok(4), "released lock is found on retry");
    }

    #[test]
    fn injected_fault_aborts_before_any_mutation() {
        let mut k = small_kernel(64);
        let bag = bag_with(&mut k, 8);
        k.register_shrinker(&(bag.clone() as ShrinkerHandle));
        let free_before = k.phys.free_frames();
        let (res, trace) = fpr_faults::with_plan(
            FaultPlan::passive().fail_nth_crossing(0),
            || k.reclaim(8),
        );
        assert_eq!(trace.injected().len(), 1);
        assert!(res.is_err());
        assert_eq!(bag.lock().unwrap().frames.len(), 8, "no shrinker mutated");
        assert_eq!(k.phys.free_frames(), free_before);
        assert_eq!(k.reclaim_stats().aborted_passes, 1);
        assert_eq!(k.reclaim_stats().passes, 0);
        // And the pass succeeds on retry.
        assert_eq!(k.reclaim(8), Ok(8));
    }

    fn swap_kernel(frames: u64, slots: u64) -> (Kernel, crate::pid::Pid) {
        let mut k = Kernel::new(MachineConfig {
            frames,
            swap_slots: slots,
            ..MachineConfig::default()
        });
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    fn write_pages(k: &mut Kernel, pid: crate::pid::Pid, base: fpr_mem::Vpn, n: u64) {
        for i in 0..n {
            k.write_mem(pid, fpr_mem::Vpn(base.0 + i), 0xAB00 + i).unwrap();
        }
    }

    #[test]
    fn swap_out_evicts_and_faults_bring_pages_back() {
        let (mut k, init) = swap_kernel(256, 128);
        let base = k
            .mmap_anon(init, 32, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        write_pages(&mut k, init, base, 32);
        assert_eq!(k.swap_out_pass(16), Ok(16));
        assert_eq!(k.process(init).unwrap().aspace.swapped_pages(), 16);
        assert_eq!(k.phys.swap().used_slots(), 16);
        assert_eq!(k.reclaim_stats().pages_swapped_out, 16);
        k.assert_consistent();
        // Faulting every page back restores the exact contents and frees
        // the slots.
        for i in 0..32 {
            assert_eq!(
                k.read_mem(init, fpr_mem::Vpn(base.0 + i)),
                Ok(0xAB00 + i)
            );
        }
        assert_eq!(k.process(init).unwrap().aspace.swapped_pages(), 0);
        assert_eq!(k.phys.swap().used_slots(), 0);
        assert_eq!(k.phys.swap().stats().swap_ins, 16);
        k.assert_consistent();
    }

    #[test]
    fn injected_swap_out_fault_aborts_byte_identical() {
        let (mut k, init) = swap_kernel(256, 64);
        let vbase = k
            .mmap_anon(init, 16, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        write_pages(&mut k, init, vbase, 16);
        let base = k.baseline();
        let (res, trace) = fpr_faults::with_plan(
            FaultPlan::passive().fail_at(FaultSite::SwapOut, 0),
            || k.swap_out_pass(8),
        );
        assert_eq!(trace.injected().len(), 1);
        assert!(res.is_err());
        k.leak_check(&base).unwrap();
        k.assert_consistent();
        assert_eq!(k.reclaim_stats().aborted_swap_passes, 1);
        assert_eq!(k.reclaim_stats().swap_out_passes, 0);
        // And the identical pass succeeds on retry.
        assert_eq!(k.swap_out_pass(8), Ok(8));
    }

    #[test]
    fn injected_slot_alloc_fault_unwinds_every_reservation() {
        let (mut k, init) = swap_kernel(256, 64);
        let vbase = k
            .mmap_anon(init, 16, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        write_pages(&mut k, init, vbase, 16);
        let base = k.baseline();
        // Fail the *fourth* slot reservation: three slots are already held
        // and must all be returned.
        let (res, trace) = fpr_faults::with_plan(
            FaultPlan::passive().fail_at(FaultSite::SwapSlotAlloc, 3),
            || k.swap_out_pass(8),
        );
        assert_eq!(trace.injected().len(), 1);
        assert!(res.is_err());
        assert_eq!(k.phys.swap().used_slots(), 0);
        k.leak_check(&base).unwrap();
        k.assert_consistent();
        assert_eq!(k.reclaim_stats().aborted_swap_passes, 1);
    }

    #[test]
    fn swap_in_io_error_is_contained_to_the_faulting_process() {
        let (mut k, init) = swap_kernel(256, 64);
        let child = k.allocate_process(init, "victim").unwrap();
        let vbase = k
            .mmap_anon(child, 8, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        write_pages(&mut k, child, vbase, 8);
        assert_eq!(k.swap_out_pass(8), Ok(8));
        let (res, trace) = fpr_faults::with_plan(
            FaultPlan::passive().fail_at(FaultSite::SwapIn, 0),
            || k.read_mem(child, vbase),
        );
        assert_eq!(trace.injected().len(), 1);
        assert_eq!(res, Err(crate::error::Errno::Efault));
        assert_eq!(k.phys.swap().stats().io_errors, 1);
        // Only the faulting process died — SIGBUS-style — and its exit
        // released every frame and swap slot it held.
        assert!(k.process(child).unwrap().is_zombie());
        let (pid, status) = k.waitpid(init, Some(child)).unwrap().unwrap();
        assert_eq!(pid, child);
        assert_eq!(status, crate::lifecycle::SIGBUS_EXIT_STATUS);
        assert_eq!(k.phys.swap().used_slots(), 0);
        k.assert_consistent();
    }

    #[test]
    fn swap_tier_stays_idle_without_pressure() {
        let (mut k, init) = swap_kernel(262_144, 64);
        let vbase = k
            .mmap_anon(init, 8, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        write_pages(&mut k, init, vbase, 8);
        assert!(!k.swap_could_help(), "no pressure, no eviction");
        assert!(!k.direct_reclaim());
        assert_eq!(k.phys.swap().used_slots(), 0);
    }

    #[test]
    fn write_storm_swaps_instead_of_oom_killing() {
        // 160 pages of dirty anonymous memory on a 128-frame machine
        // (two mappings: heuristic overcommit refuses a single oversize
        // charge): without swap this storm must kill someone; with it,
        // direct reclaim evicts cold pages and every write lands.
        let (mut k, init) = swap_kernel(128, 256);
        let a = k
            .mmap_anon(init, 80, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        let b = k
            .mmap_anon(init, 80, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        write_pages(&mut k, init, a, 80);
        write_pages(&mut k, init, b, 80);
        let p = k.process(init).unwrap();
        assert!(!p.is_zombie(), "init survived the storm");
        assert_eq!(
            p.resident_pages() + p.aspace.swapped_pages(),
            160,
            "every page is resident or swapped"
        );
        assert!(k.reclaim_stats().pages_swapped_out > 0);
        k.assert_consistent();
        // Spot-check contents across the resident/swapped split.
        for i in [0u64, 42, 79] {
            assert_eq!(k.read_mem(init, fpr_mem::Vpn(a.0 + i)), Ok(0xAB00 + i));
            assert_eq!(k.read_mem(init, fpr_mem::Vpn(b.0 + i)), Ok(0xAB00 + i));
        }
    }

    #[test]
    fn balance_pressure_is_inert_without_pressure() {
        let mut k = small_kernel(262_144);
        let bag = bag_with(&mut k, 8);
        k.register_shrinker(&(bag.clone() as ShrinkerHandle));
        let before = k.cycles.total();
        assert_eq!(k.balance_pressure(), 0);
        assert_eq!(k.cycles.total(), before);
        assert_eq!(bag.lock().unwrap().frames.len(), 8);
        assert_eq!(k.reclaim(8), Ok(8)); // cleanup
    }

    #[test]
    fn balance_pressure_reclaims_toward_high_watermark() {
        let mut k = small_kernel(256);
        let w = k.phys.watermarks();
        // Pin the machine below the low watermark with bag frames.
        let mut frames = Vec::new();
        while k.phys.free_frames() >= w.low {
            frames.push(k.phys.alloc_zeroed(&mut k.cycles).unwrap());
        }
        let bag = Arc::new(Mutex::new(FrameBag { frames }));
        k.register_shrinker(&(bag.clone() as ShrinkerHandle));
        assert!(k.memory_pressure() >= PressureLevel::High);
        let freed = k.balance_pressure();
        assert!(freed > 0);
        assert!(k.phys.free_frames() >= w.high);
        assert_eq!(k.memory_pressure(), PressureLevel::None);
        // Drain the rest for a clean world.
        let rest = bag.lock().unwrap().frames.len() as u64;
        assert_eq!(k.reclaim(rest), Ok(rest));
    }
}
