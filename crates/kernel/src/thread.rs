//! Threads of a simulated process.

use crate::pid::Tid;
use crate::sync::LockId;

/// Scheduling state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Currently on a CPU.
    Running,
    /// Blocked waiting for a lock.
    BlockedOnLock(LockId),
    /// Blocked in `wait()` for a child.
    BlockedInWait,
    /// Suspended because a `vfork` child borrowed the address space.
    VforkParked,
    /// Finished.
    Exited,
}

/// One thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Machine-wide thread id.
    pub tid: Tid,
    /// Scheduling state.
    pub state: ThreadState,
    /// Locks currently held (mirror of [`crate::sync::LockTable`] owners,
    /// kept for O(1) audit queries).
    pub holding: Vec<LockId>,
}

impl Thread {
    /// Creates a runnable thread.
    pub fn new(tid: Tid) -> Thread {
        Thread {
            tid,
            state: ThreadState::Runnable,
            holding: Vec::new(),
        }
    }

    /// True if the thread can make progress.
    pub fn is_schedulable(&self) -> bool {
        matches!(self.state, ThreadState::Runnable | ThreadState::Running)
    }

    /// Records lock acquisition.
    pub fn note_acquired(&mut self, l: LockId) {
        self.holding.push(l);
    }

    /// Records lock release.
    pub fn note_released(&mut self, l: LockId) {
        if let Some(i) = self.holding.iter().position(|h| *h == l) {
            self.holding.swap_remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedulable_states() {
        let mut t = Thread::new(Tid(1));
        assert!(t.is_schedulable());
        t.state = ThreadState::BlockedOnLock(LockId(0));
        assert!(!t.is_schedulable());
        t.state = ThreadState::VforkParked;
        assert!(!t.is_schedulable());
        t.state = ThreadState::Running;
        assert!(t.is_schedulable());
    }

    #[test]
    fn lock_bookkeeping() {
        let mut t = Thread::new(Tid(1));
        t.note_acquired(LockId(3));
        t.note_acquired(LockId(5));
        assert_eq!(t.holding.len(), 2);
        t.note_released(LockId(3));
        assert_eq!(t.holding, vec![LockId(5)]);
        t.note_released(LockId(99)); // harmless
        assert_eq!(t.holding.len(), 1);
    }
}
