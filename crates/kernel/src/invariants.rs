//! Kernel-wide consistency checks and leak detection.
//!
//! Two complementary tools back the transactional process-creation
//! guarantee:
//!
//! * [`Kernel::check_invariants`] verifies *structural* consistency at any
//!   instant — frame reference counts match the page tables that use them,
//!   every PTE lies inside a VMA, descriptor references balance, the
//!   process tree is well-linked, and per-uid accounting matches the live
//!   set.
//! * [`Kernel::baseline`] + [`Kernel::leak_check`] verify *temporal*
//!   cleanliness: snapshot before an operation, and after a failed (or
//!   fully undone) operation assert that nothing — frames, commit charge,
//!   PIDs, descriptions, pipes, inodes — was left behind.
//!
//! Both return every violation found rather than the first, so a failing
//! test names the full damage.

use crate::error::Errno;
use crate::file::FileObject;
use crate::kernel::Kernel;
use crate::task::SpaceRef;
use std::collections::BTreeMap;

/// A snapshot of every leak-prone global resource count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelBaseline {
    /// Physical frames in use.
    pub used_frames: u64,
    /// Commit charge.
    pub committed: u64,
    /// Live PIDs (allocator view).
    pub live_pids: usize,
    /// Process-table entries (including zombies).
    pub processes: usize,
    /// Live open file descriptions.
    pub live_ofds: usize,
    /// Live pipes.
    pub live_pipes: usize,
    /// Filesystem inodes.
    pub inodes: usize,
    /// Swap slots in use.
    pub swap_used: u64,
    /// Per-uid live process counts.
    pub nproc: BTreeMap<u32, u64>,
}

impl Kernel {
    /// Snapshots the resource counts [`Kernel::leak_check`] compares.
    pub fn baseline(&self) -> KernelBaseline {
        KernelBaseline {
            used_frames: self.phys.used_frames(),
            committed: self.commit.committed(),
            live_pids: self.pids.live(),
            processes: self.procs.len(),
            live_ofds: self.ofds.live(),
            live_pipes: self.pipes.live(),
            inodes: self.vfs.inode_count(),
            swap_used: self.phys.swap().used_slots(),
            nproc: self.user_counts.clone(),
        }
    }

    /// Compares current resource counts against `base`, returning one
    /// message per divergence. An operation that failed (and claimed to
    /// roll back) must leave the kernel passing this check.
    pub fn leak_check(&self, base: &KernelBaseline) -> Result<(), Vec<String>> {
        let now = self.baseline();
        let mut v = Vec::new();
        let mut cmp = |what: &str, before: u64, after: u64| {
            if before != after {
                v.push(format!("{what}: {before} before vs {after} after"));
            }
        };
        cmp("used frames", base.used_frames, now.used_frames);
        cmp("commit charge", base.committed, now.committed);
        cmp("live pids", base.live_pids as u64, now.live_pids as u64);
        cmp("process-table entries", base.processes as u64, now.processes as u64);
        cmp("open file descriptions", base.live_ofds as u64, now.live_ofds as u64);
        cmp("pipes", base.live_pipes as u64, now.live_pipes as u64);
        cmp("inodes", base.inodes as u64, now.inodes as u64);
        cmp("swap slots", base.swap_used, now.swap_used);
        for uid in base.nproc.keys().chain(now.nproc.keys()) {
            let b = base.nproc.get(uid).copied().unwrap_or(0);
            let a = now.nproc.get(uid).copied().unwrap_or(0);
            if b != a {
                v.push(format!("nproc of uid {uid}: {b} before vs {a} after"));
            }
        }
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// Verifies the kernel's cross-structure invariants, returning one
    /// message per violation:
    ///
    /// 1. every frame's reference count equals the number of PTEs mapping
    ///    it across all owned address spaces plus its kernel pins (no
    ///    over- or under-counted COW sharing, no orphaned image-cache
    ///    entries);
    /// 2. every resident page lies inside a VMA of its space;
    /// 3. every descriptor references a live open file description, and
    ///    each description's reference count equals the number of
    ///    descriptors naming it;
    /// 4. pipe end counts equal the live descriptions holding each end;
    /// 5. the process tree is well-linked (parents exist or are init,
    ///    parent/child edges are symmetric, no orphan PIDs in the
    ///    allocator) and per-uid accounting matches the live process set.
    pub fn check_invariants(&self) -> Result<(), Vec<String>> {
        fpr_trace::metrics::incr("kernel.invariant_check");
        let mut v = Vec::new();

        // --- Memory: frame refcounts vs page tables, PTEs vs VMAs. ---
        // A leaf page-table node shared by an on-demand fork appears in
        // several spaces but holds each frame reference *once* (the frame
        // refcount counts table slots, not spaces). Deduplicate by node
        // identity: only the first space presenting a node contributes its
        // PTEs to the expected refcounts. The VMA-coverage check still
        // runs per space — a shared subtree must be covered in every
        // space referencing it.
        let mut pte_refs: BTreeMap<u64, u32> = BTreeMap::new();
        let mut seen_nodes: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for p in self.procs.values() {
            if p.space_ref != SpaceRef::Owned {
                continue;
            }
            let pid = p.pid;
            // Stage this space's nodes separately: a node yields many PTEs
            // and all of them must count, not just those before the node
            // is marked seen.
            let mut new_nodes: Vec<usize> = Vec::new();
            p.aspace.for_each_resident_keyed(|nid, vpn, pte| {
                if !seen_nodes.contains(&nid) {
                    *pte_refs.entry(pte.pfn.0).or_insert(0) += 1;
                    new_nodes.push(nid);
                }
                if p.aspace.vma_at(vpn).is_none() {
                    v.push(format!("pid {pid}: resident page {} outside any VMA", vpn.0));
                }
            });
            seen_nodes.extend(new_nodes);
        }
        // Kernel pins (exec image cache) hold references too; a frame held
        // only by pins must still balance and count as used.
        for (pfn, pins) in self.phys.pinned() {
            *pte_refs.entry(pfn.0).or_insert(0) += pins;
        }
        for (pfn, expect) in &pte_refs {
            match self.phys.refs(fpr_mem::Pfn(*pfn)) {
                Ok(actual) if actual == *expect => {}
                Ok(actual) => v.push(format!(
                    "frame {pfn}: refcount {actual} but {expect} PTEs map it"
                )),
                Err(_) => v.push(format!("frame {pfn}: mapped by a PTE but not allocated")),
            }
        }
        if pte_refs.len() as u64 != self.phys.used_frames() {
            v.push(format!(
                "{} frames in use but {} distinct frames mapped",
                self.phys.used_frames(),
                pte_refs.len()
            ));
        }

        // --- Swap: slot refcounts vs swap-entry PTEs. ---
        // Same node-identity dedup as frames: a leaf subtree shared by an
        // on-demand fork holds each slot reference once, and each space's
        // `swapped` counter must match its own swap-entry population.
        let mut slot_refs: BTreeMap<u64, u32> = BTreeMap::new();
        let mut seen_swap_nodes: std::collections::BTreeSet<usize> =
            std::collections::BTreeSet::new();
        for p in self.procs.values() {
            if p.space_ref != SpaceRef::Owned {
                continue;
            }
            let pid = p.pid;
            let mut new_nodes: Vec<usize> = Vec::new();
            let mut entries: u64 = 0;
            p.aspace.for_each_swap_entry_keyed(|nid, vpn, slot| {
                entries += 1;
                if !seen_swap_nodes.contains(&nid) {
                    *slot_refs.entry(slot).or_insert(0) += 1;
                    new_nodes.push(nid);
                }
                if p.aspace.vma_at(vpn).is_none() {
                    v.push(format!("pid {pid}: swap entry {} outside any VMA", vpn.0));
                }
            });
            seen_swap_nodes.extend(new_nodes);
            if entries != p.aspace.swapped_pages() {
                v.push(format!(
                    "pid {pid}: swapped counter {} but {entries} swap entries present",
                    p.aspace.swapped_pages()
                ));
            }
        }
        let device: BTreeMap<u64, u32> = self.phys.swap().used_slot_refs().into_iter().collect();
        for (slot, expect) in &slot_refs {
            match device.get(slot) {
                Some(actual) if actual == expect => {}
                Some(actual) => v.push(format!(
                    "swap slot {slot}: refcount {actual} but {expect} swap entries name it"
                )),
                None => v.push(format!("swap slot {slot}: named by a PTE but not allocated")),
            }
        }
        if slot_refs.len() as u64 != self.phys.swap().used_slots() {
            v.push(format!(
                "{} swap slots in use but {} distinct slots referenced",
                self.phys.swap().used_slots(),
                slot_refs.len()
            ));
        }

        // --- Descriptors: fd -> ofd edges and reference counts. ---
        let mut fd_refs: BTreeMap<u32, u32> = BTreeMap::new();
        for p in self.procs.values() {
            for (fd, entry) in p.fds.iter() {
                *fd_refs.entry(entry.ofd.0).or_insert(0) += 1;
                if self.ofds.get(entry.ofd).is_err() {
                    v.push(format!(
                        "pid {}: fd {} references dead ofd {}",
                        p.pid, fd.0, entry.ofd.0
                    ));
                }
            }
        }
        let mut pipe_ends: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
        for (id, ofd) in self.ofds.iter() {
            let expect = fd_refs.get(&id.0).copied().unwrap_or(0);
            if ofd.ref_count() != expect {
                v.push(format!(
                    "ofd {}: refcount {} but {} descriptors reference it",
                    id.0,
                    ofd.ref_count(),
                    expect
                ));
            }
            match ofd.object {
                FileObject::PipeRead(p) => pipe_ends.entry(p.0).or_default().0 += 1,
                FileObject::PipeWrite(p) => pipe_ends.entry(p.0).or_default().1 += 1,
                _ => {}
            }
        }

        // --- Pipes: end counts vs descriptions. ---
        for (id, pipe) in self.pipes.iter() {
            let (r, w) = pipe_ends.get(&id.0).copied().unwrap_or((0, 0));
            if pipe.readers != r || pipe.writers != w {
                v.push(format!(
                    "pipe {}: end counts ({}, {}) but descriptions hold ({r}, {w})",
                    id.0, pipe.readers, pipe.writers
                ));
            }
        }

        // --- Process tree and accounting. ---
        let mut live_by_uid: BTreeMap<u32, u64> = BTreeMap::new();
        for p in self.procs.values() {
            if !p.is_zombie() {
                *live_by_uid.entry(p.cred.uid).or_insert(0) += 1;
            }
            if p.ppid != p.pid && !self.procs.contains_key(&p.ppid) {
                v.push(format!("pid {}: parent {} does not exist", p.pid, p.ppid));
            }
            if p.ppid != p.pid {
                let listed = self
                    .procs
                    .get(&p.ppid)
                    .map(|pp| pp.children.contains(&p.pid))
                    .unwrap_or(false);
                if !listed {
                    v.push(format!(
                        "pid {}: not in parent {}'s child list",
                        p.pid, p.ppid
                    ));
                }
            }
            for c in &p.children {
                if !self.procs.contains_key(c) {
                    v.push(format!("pid {}: lists dead child {}", p.pid, c));
                }
            }
        }
        if self.pids.live() != self.procs.len() {
            v.push(format!(
                "{} PIDs allocated but {} process-table entries",
                self.pids.live(),
                self.procs.len()
            ));
        }
        for (uid, count) in &live_by_uid {
            let booked = self.user_counts.get(uid).copied().unwrap_or(0);
            if booked != *count {
                v.push(format!(
                    "uid {uid}: accounting says {booked} live processes, table has {count}"
                ));
            }
        }
        for (uid, booked) in &self.user_counts {
            if *booked > 0 && !live_by_uid.contains_key(uid) {
                v.push(format!(
                    "uid {uid}: accounting says {booked} live processes, table has 0"
                ));
            }
        }

        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// Convenience for tests: panic with every violation listed.
    pub fn assert_consistent(&self) {
        if let Err(violations) = self.check_invariants() {
            panic!("kernel invariants violated:\n  {}", violations.join("\n  "));
        }
    }
}

/// Errors from invariant checking are reported as strings, but an errno is
/// sometimes wanted at API boundaries.
pub fn violations_to_errno(_: &[String]) -> Errno {
    Errno::Einval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::Pid;
    use fpr_mem::{ForkMode, Prot, Share};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn fresh_kernel_is_consistent() {
        let (k, _) = boot();
        k.assert_consistent();
    }

    #[test]
    fn consistent_through_mmap_fork_pipe() {
        let (mut k, init) = boot();
        let base = k.mmap_anon(init, 8, Prot::RW, Share::Private).unwrap();
        k.populate(init, base, 8).unwrap();
        k.pipe(init).unwrap();
        let child = k.allocate_process(init, "c").unwrap();
        let space = k.clone_address_space(init, ForkMode::Cow).unwrap();
        let fds = k.clone_fd_table(init).unwrap();
        {
            let p = k.process_mut(child).unwrap();
            p.aspace = space;
            p.fds = fds;
        }
        k.assert_consistent();
        k.exit(child, 0).unwrap();
        k.waitpid(init, Some(child)).unwrap();
        k.assert_consistent();
    }

    #[test]
    fn leak_check_catches_unbalanced_state() {
        let (mut k, init) = boot();
        let base = k.baseline();
        // A successful mmap is a real (wanted) state change, so the
        // baseline comparison reports it.
        k.mmap_anon(init, 4, Prot::RW, Share::Private).unwrap();
        let err = k.leak_check(&base).unwrap_err();
        assert!(err.iter().any(|m| m.contains("commit charge")));
    }

    #[test]
    fn abort_process_creation_restores_baseline() {
        let (mut k, init) = boot();
        let base = k.baseline();
        let child = k.allocate_process(init, "doomed").unwrap();
        let space = k.clone_address_space(init, ForkMode::Cow).unwrap();
        let fds = k.clone_fd_table(init).unwrap();
        {
            let p = k.process_mut(child).unwrap();
            p.aspace = space;
            p.fds = fds;
        }
        k.abort_process_creation(child).unwrap();
        k.leak_check(&base).unwrap();
        k.assert_consistent();
    }
}
