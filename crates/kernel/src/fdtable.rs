//! Per-process file-descriptor tables.
//!
//! A descriptor is an index into this table; the entry records the open
//! file description it references plus the per-descriptor `FD_CLOEXEC`
//! flag. Fork duplicates the whole table (every entry takes a reference);
//! exec closes the close-on-exec subset — both behaviours the paper lists
//! among fork's accumulated special cases.

use crate::error::{Errno, KResult};
use crate::file::OfdId;
use fpr_faults::FaultSite;
use std::collections::BTreeMap;

/// A file descriptor number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

/// Standard input.
pub const STDIN: Fd = Fd(0);
/// Standard output.
pub const STDOUT: Fd = Fd(1);
/// Standard error.
pub const STDERR: Fd = Fd(2);

/// One descriptor-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdEntry {
    /// The open file description this descriptor references.
    pub ofd: OfdId,
    /// Close this descriptor on exec.
    pub cloexec: bool,
}

/// A per-process descriptor table.
///
/// Stored sparsely (occupied slots only), so every whole-table operation —
/// fork's clone, exec's `FD_CLOEXEC` sweep, exit's drain — is O(open
/// descriptors), not O(highest descriptor number). A process that dup2s
/// one descriptor to 100 000 and closes it again pays for one entry, not
/// for a hundred thousand empty slots.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    slots: BTreeMap<u32, FdEntry>,
}

impl FdTable {
    /// Creates an empty table.
    pub fn new() -> FdTable {
        FdTable::default()
    }

    /// Installs `entry` at the lowest free descriptor, enforcing `limit`
    /// (the `RLIMIT_NOFILE` soft limit).
    pub fn install(&mut self, entry: FdEntry, limit: u64) -> KResult<Fd> {
        fpr_faults::cross(FaultSite::FdAlloc).map_err(|_| Errno::Emfile)?;
        // Keys iterate ascending: the first index not matching its rank is
        // the lowest free descriptor (POSIX lowest-fd rule).
        let mut idx: u32 = 0;
        for k in self.slots.keys() {
            if *k == idx {
                idx += 1;
            } else {
                break;
            }
        }
        if idx as u64 >= limit {
            return Err(Errno::Emfile);
        }
        self.slots.insert(idx, entry);
        Ok(Fd(idx))
    }

    /// Installs `entry` at exactly `fd` (the `dup2` target path),
    /// returning any displaced entry for the caller to release.
    pub fn install_at(&mut self, fd: Fd, entry: FdEntry, limit: u64) -> KResult<Option<FdEntry>> {
        fpr_faults::cross(FaultSite::FdAlloc).map_err(|_| Errno::Emfile)?;
        if fd.0 as u64 >= limit {
            return Err(Errno::Ebadf);
        }
        Ok(self.slots.insert(fd.0, entry))
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: Fd) -> KResult<FdEntry> {
        self.slots.get(&fd.0).copied().ok_or(Errno::Ebadf)
    }

    /// Sets or clears `FD_CLOEXEC`.
    pub fn set_cloexec(&mut self, fd: Fd, cloexec: bool) -> KResult<()> {
        match self.slots.get_mut(&fd.0) {
            Some(e) => {
                e.cloexec = cloexec;
                Ok(())
            }
            None => Err(Errno::Ebadf),
        }
    }

    /// Removes a descriptor, returning its entry for release.
    pub fn remove(&mut self, fd: Fd) -> KResult<FdEntry> {
        self.slots.remove(&fd.0).ok_or(Errno::Ebadf)
    }

    /// Iterates over live `(fd, entry)` pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, FdEntry)> + '_ {
        self.slots.iter().map(|(i, e)| (Fd(*i), *e))
    }

    /// Removes and returns every `FD_CLOEXEC` entry (the exec sweep).
    pub fn take_cloexec(&mut self) -> Vec<(Fd, FdEntry)> {
        let doomed: Vec<u32> = self
            .slots
            .iter()
            .filter(|(_, e)| e.cloexec)
            .map(|(i, _)| *i)
            .collect();
        doomed
            .into_iter()
            .map(|i| (Fd(i), self.slots.remove(&i).expect("key just enumerated")))
            .collect()
    }

    /// Removes and returns every entry (process exit).
    pub fn drain(&mut self) -> Vec<FdEntry> {
        std::mem::take(&mut self.slots).into_values().collect()
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.slots.len()
    }

    /// Highest open descriptor, if any.
    pub fn highest(&self) -> Option<Fd> {
        self.slots.last_key_value().map(|(i, _)| Fd(*i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ofd: u32) -> FdEntry {
        FdEntry {
            ofd: OfdId(ofd),
            cloexec: false,
        }
    }

    #[test]
    fn lowest_free_descriptor_allocated() {
        let mut t = FdTable::new();
        assert_eq!(t.install(e(0), 1024).unwrap(), Fd(0));
        assert_eq!(t.install(e(1), 1024).unwrap(), Fd(1));
        t.remove(Fd(0)).unwrap();
        assert_eq!(
            t.install(e(2), 1024).unwrap(),
            Fd(0),
            "POSIX lowest-fd rule"
        );
    }

    #[test]
    fn nofile_limit_enforced() {
        let mut t = FdTable::new();
        t.install(e(0), 2).unwrap();
        t.install(e(1), 2).unwrap();
        assert_eq!(t.install(e(2), 2), Err(Errno::Emfile));
    }

    #[test]
    fn install_at_displaces() {
        let mut t = FdTable::new();
        t.install(e(0), 1024).unwrap();
        let displaced = t.install_at(Fd(0), e(9), 1024).unwrap();
        assert_eq!(displaced, Some(e(0)));
        assert_eq!(t.get(Fd(0)).unwrap().ofd, OfdId(9));
        assert_eq!(t.install_at(Fd(7), e(3), 1024).unwrap(), None);
        assert_eq!(t.get(Fd(7)).unwrap().ofd, OfdId(3));
    }

    #[test]
    fn cloexec_sweep_takes_only_marked() {
        let mut t = FdTable::new();
        t.install(e(0), 64).unwrap();
        t.install(e(1), 64).unwrap();
        t.install(e(2), 64).unwrap();
        t.set_cloexec(Fd(1), true).unwrap();
        let swept = t.take_cloexec();
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].0, Fd(1));
        assert_eq!(t.open_count(), 2);
        assert!(t.get(Fd(1)).is_err());
    }

    #[test]
    fn iter_ascending_and_highest() {
        let mut t = FdTable::new();
        t.install(e(0), 64).unwrap();
        t.install_at(Fd(5), e(5), 64).unwrap();
        let fds: Vec<u32> = t.iter().map(|(fd, _)| fd.0).collect();
        assert_eq!(fds, vec![0, 5]);
        assert_eq!(t.highest(), Some(Fd(5)));
        assert_eq!(t.open_count(), 2);
    }

    #[test]
    fn bad_fd_everywhere() {
        let mut t = FdTable::new();
        assert_eq!(t.get(Fd(0)).err(), Some(Errno::Ebadf));
        assert_eq!(t.remove(Fd(0)).err(), Some(Errno::Ebadf));
        assert_eq!(t.set_cloexec(Fd(0), true).err(), Some(Errno::Ebadf));
    }

    #[test]
    fn drain_empties_table() {
        let mut t = FdTable::new();
        t.install(e(0), 64).unwrap();
        t.install(e(1), 64).unwrap();
        assert_eq!(t.drain().len(), 2);
        assert_eq!(t.open_count(), 0);
    }
}
