//! Virtual time, derived from the cycle counter.

use fpr_mem::CYCLES_PER_US;

/// A monotonic virtual clock.
///
/// The kernel advances it from the cycle accumulator so that simulated
/// timestamps are deterministic across runs and machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    ns: u64,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Advances by a number of simulated cycles.
    pub fn advance_cycles(&mut self, cycles: u64) {
        // CYCLES_PER_US cycles per µs → 1000 ns per CYCLES_PER_US cycles.
        self.ns += cycles * 1_000 / CYCLES_PER_US;
    }

    /// Advances by nanoseconds directly (timer ticks).
    pub fn advance_ns(&mut self, ns: u64) {
        self.ns += ns;
    }

    /// Current time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.ns / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_convert_to_ns() {
        let mut c = Clock::new();
        c.advance_cycles(CYCLES_PER_US); // 1 µs
        assert_eq!(c.now_ns(), 1_000);
        assert_eq!(c.now_us(), 1);
    }

    #[test]
    fn direct_ns_advance() {
        let mut c = Clock::new();
        c.advance_ns(2_500);
        assert_eq!(c.now_us(), 2);
        assert_eq!(c.now_ns(), 2_500);
    }
}
