//! A round-robin scheduler over simulated threads, plus per-CPU run
//! queues for the SMP driver.
//!
//! [`Scheduler`] is the original deterministic global queue; it gives the
//! examples and the fork-scaling experiment a stable notion of "which
//! threads are on CPUs right now", which feeds the TLB-shootdown cost (a
//! fork must interrupt every CPU running the parent). It is deliberately
//! untouched by the SMP work — its answers feed simulated costs, so any
//! restructuring would change every experiment's byte-exact output.
//!
//! [`PerCpuQueues`] is the SMP-era design the paper's scaling argument
//! assumes the competition has: each CPU owns a private run queue and
//! only touches another CPU's queue to steal work when its own runs dry.
//! Uncontended enqueue/dequeue therefore never serializes, unlike the
//! single global queue.

use crate::pid::{Pid, Tid};
use std::collections::VecDeque;

/// A runnable entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Owning process.
    pub pid: Pid,
    /// Thread within it.
    pub tid: Tid,
}

/// Round-robin run queue with a fixed number of CPUs.
#[derive(Debug)]
pub struct Scheduler {
    cpus: Vec<Option<Task>>,
    queue: VecDeque<Task>,
}

impl Scheduler {
    /// Creates a scheduler with `ncpus` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `ncpus` is zero.
    pub fn new(ncpus: u32) -> Scheduler {
        assert!(ncpus > 0, "need at least one CPU");
        Scheduler {
            cpus: vec![None; ncpus as usize],
            queue: VecDeque::new(),
        }
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> u32 {
        self.cpus.len() as u32
    }

    /// Adds a task to the tail of the run queue.
    pub fn enqueue(&mut self, t: Task) {
        self.queue.push_back(t);
    }

    /// Removes a task wherever it is (exit, block).
    pub fn remove(&mut self, t: Task) {
        self.queue.retain(|q| *q != t);
        for slot in &mut self.cpus {
            if *slot == Some(t) {
                *slot = None;
            }
        }
    }

    /// Removes every task of a process.
    pub fn remove_process(&mut self, pid: Pid) {
        self.queue.retain(|q| q.pid != pid);
        for slot in &mut self.cpus {
            if slot.map(|t| t.pid == pid).unwrap_or(false) {
                *slot = None;
            }
        }
    }

    /// One scheduling round: every CPU preempts its task (requeueing it)
    /// and takes the next queued task. Returns the tasks now on CPU.
    pub fn tick(&mut self) -> Vec<Task> {
        for slot in &mut self.cpus {
            if let Some(t) = slot.take() {
                self.queue.push_back(t);
            }
        }
        for slot in &mut self.cpus {
            *slot = self.queue.pop_front();
        }
        self.running()
    }

    /// Tasks currently on CPUs.
    pub fn running(&self) -> Vec<Task> {
        self.cpus.iter().filter_map(|s| *s).collect()
    }

    /// Number of CPUs currently running threads of `pid` — the shootdown
    /// fan-out for that process's address space.
    pub fn cpus_running(&self, pid: Pid) -> u32 {
        self.cpus
            .iter()
            .filter(|s| s.map(|t| t.pid == pid).unwrap_or(false))
            .count() as u32
    }

    /// Queued (runnable but off-CPU) task count.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

/// Per-CPU run queues with work stealing.
///
/// Each CPU pushes and pops at the front of its own queue (LIFO for cache
/// warmth, like Linux's wake-affine placement); an idle CPU steals from
/// the **back** of the longest other queue, so thieves and owners touch
/// opposite ends. The structure is single-threadedly deterministic — the
/// SMP driver wraps whole cells in a lock, so this models the *policy*
/// (who scans whose queue) rather than lock-free mechanics.
#[derive(Debug)]
pub struct PerCpuQueues {
    queues: Vec<VecDeque<Task>>,
    steals: u64,
}

impl PerCpuQueues {
    /// Creates `ncpus` empty queues.
    ///
    /// # Panics
    ///
    /// Panics if `ncpus` is zero.
    pub fn new(ncpus: u32) -> PerCpuQueues {
        assert!(ncpus > 0, "need at least one CPU");
        PerCpuQueues {
            queues: (0..ncpus).map(|_| VecDeque::new()).collect(),
            steals: 0,
        }
    }

    /// Number of CPUs (= queues).
    pub fn ncpus(&self) -> u32 {
        self.queues.len() as u32
    }

    /// Enqueues a task on `cpu`'s local queue (wrapping out-of-range
    /// CPUs, so callers can pass a raw worker index).
    pub fn enqueue(&mut self, cpu: usize, t: Task) {
        let n = self.queues.len();
        self.queues[cpu % n].push_front(t);
    }

    /// Takes the next task for `cpu`: its own queue first, then a steal
    /// from the back of the longest other queue. Returns `None` only when
    /// every queue is empty.
    pub fn next(&mut self, cpu: usize) -> Option<Task> {
        let n = self.queues.len();
        let cpu = cpu % n;
        if let Some(t) = self.queues[cpu].pop_front() {
            return Some(t);
        }
        let victim = (0..n)
            .filter(|&q| q != cpu)
            .max_by_key(|&q| self.queues[q].len())?;
        let stolen = self.queues[victim].pop_back();
        if stolen.is_some() {
            self.steals += 1;
        }
        stolen
    }

    /// Number of successful steals so far — nonzero means the load was
    /// imbalanced enough that idle CPUs went scanning.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Total queued tasks across all CPUs.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when no CPU has queued work.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Queue depth of one CPU.
    pub fn depth(&self, cpu: usize) -> usize {
        self.queues[cpu % self.queues.len()].len()
    }

    /// Removes every task of a process from every queue (exit path).
    pub fn remove_process(&mut self, pid: Pid) {
        for q in &mut self.queues {
            q.retain(|t| t.pid != pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(pid: u32, tid: u64) -> Task {
        Task {
            pid: Pid(pid),
            tid: Tid(tid),
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::new(1);
        s.enqueue(t(1, 1));
        s.enqueue(t(2, 2));
        assert_eq!(s.tick(), vec![t(1, 1)]);
        assert_eq!(s.tick(), vec![t(2, 2)]);
        assert_eq!(s.tick(), vec![t(1, 1)]);
    }

    #[test]
    fn multi_cpu_fills_all_slots() {
        let mut s = Scheduler::new(2);
        for i in 1..=3 {
            s.enqueue(t(i, i as u64));
        }
        let running = s.tick();
        assert_eq!(running.len(), 2);
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn cpus_running_counts_per_process() {
        let mut s = Scheduler::new(4);
        s.enqueue(t(1, 1));
        s.enqueue(t(1, 2));
        s.enqueue(t(2, 3));
        s.tick();
        assert_eq!(s.cpus_running(Pid(1)), 2);
        assert_eq!(s.cpus_running(Pid(2)), 1);
        assert_eq!(s.cpus_running(Pid(9)), 0);
    }

    #[test]
    fn remove_process_clears_everywhere() {
        let mut s = Scheduler::new(2);
        s.enqueue(t(1, 1));
        s.enqueue(t(1, 2));
        s.enqueue(t(1, 3));
        s.tick();
        s.remove_process(Pid(1));
        assert_eq!(s.running().len(), 0);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_panics() {
        Scheduler::new(0);
    }

    #[test]
    fn per_cpu_queues_keep_local_work_local() {
        let mut q = PerCpuQueues::new(2);
        q.enqueue(0, t(1, 1));
        q.enqueue(1, t(2, 2));
        assert_eq!(q.next(0), Some(t(1, 1)));
        assert_eq!(q.next(1), Some(t(2, 2)));
        assert_eq!(q.steals(), 0, "local pops are not steals");
        assert!(q.is_empty());
    }

    #[test]
    fn idle_cpu_steals_from_the_longest_queue() {
        let mut q = PerCpuQueues::new(3);
        q.enqueue(0, t(1, 1));
        for i in 2..=4 {
            q.enqueue(1, t(i, i as u64));
        }
        // CPU 2 has nothing; it must raid CPU 1 (depth 3), not CPU 0
        // (depth 1), and take the oldest task (the back).
        assert_eq!(q.next(2), Some(t(2, 2)));
        assert_eq!(q.steals(), 1);
        assert_eq!(q.depth(1), 2);
        assert_eq!(q.depth(0), 1);
    }

    #[test]
    fn next_drains_everything_before_none() {
        let mut q = PerCpuQueues::new(2);
        q.enqueue(0, t(1, 1));
        q.enqueue(0, t(2, 2));
        let mut got = 0;
        while q.next(1).is_some() {
            got += 1;
        }
        assert_eq!(got, 2);
        assert_eq!(q.steals(), 2, "cpu 1 stole both");
        assert_eq!(q.next(0), None);
    }

    #[test]
    fn per_cpu_remove_process_clears_all_queues() {
        let mut q = PerCpuQueues::new(2);
        q.enqueue(0, t(1, 1));
        q.enqueue(1, t(1, 2));
        q.enqueue(1, t(2, 3));
        q.remove_process(Pid(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.next(0), Some(t(2, 3)), "stolen from cpu 1");
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_per_cpu_queues_panics() {
        PerCpuQueues::new(0);
    }
}
