//! A round-robin scheduler over simulated threads.
//!
//! The simulator is single-threaded; the scheduler exists to give the
//! examples and the fork-scaling experiment a deterministic notion of
//! "which threads are on CPUs right now", which feeds the TLB-shootdown
//! cost (a fork must interrupt every CPU running the parent).

use crate::pid::{Pid, Tid};
use std::collections::VecDeque;

/// A runnable entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Owning process.
    pub pid: Pid,
    /// Thread within it.
    pub tid: Tid,
}

/// Round-robin run queue with a fixed number of CPUs.
#[derive(Debug)]
pub struct Scheduler {
    cpus: Vec<Option<Task>>,
    queue: VecDeque<Task>,
}

impl Scheduler {
    /// Creates a scheduler with `ncpus` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `ncpus` is zero.
    pub fn new(ncpus: u32) -> Scheduler {
        assert!(ncpus > 0, "need at least one CPU");
        Scheduler {
            cpus: vec![None; ncpus as usize],
            queue: VecDeque::new(),
        }
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> u32 {
        self.cpus.len() as u32
    }

    /// Adds a task to the tail of the run queue.
    pub fn enqueue(&mut self, t: Task) {
        self.queue.push_back(t);
    }

    /// Removes a task wherever it is (exit, block).
    pub fn remove(&mut self, t: Task) {
        self.queue.retain(|q| *q != t);
        for slot in &mut self.cpus {
            if *slot == Some(t) {
                *slot = None;
            }
        }
    }

    /// Removes every task of a process.
    pub fn remove_process(&mut self, pid: Pid) {
        self.queue.retain(|q| q.pid != pid);
        for slot in &mut self.cpus {
            if slot.map(|t| t.pid == pid).unwrap_or(false) {
                *slot = None;
            }
        }
    }

    /// One scheduling round: every CPU preempts its task (requeueing it)
    /// and takes the next queued task. Returns the tasks now on CPU.
    pub fn tick(&mut self) -> Vec<Task> {
        for slot in &mut self.cpus {
            if let Some(t) = slot.take() {
                self.queue.push_back(t);
            }
        }
        for slot in &mut self.cpus {
            *slot = self.queue.pop_front();
        }
        self.running()
    }

    /// Tasks currently on CPUs.
    pub fn running(&self) -> Vec<Task> {
        self.cpus.iter().filter_map(|s| *s).collect()
    }

    /// Number of CPUs currently running threads of `pid` — the shootdown
    /// fan-out for that process's address space.
    pub fn cpus_running(&self, pid: Pid) -> u32 {
        self.cpus
            .iter()
            .filter(|s| s.map(|t| t.pid == pid).unwrap_or(false))
            .count() as u32
    }

    /// Queued (runnable but off-CPU) task count.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(pid: u32, tid: u64) -> Task {
        Task {
            pid: Pid(pid),
            tid: Tid(tid),
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::new(1);
        s.enqueue(t(1, 1));
        s.enqueue(t(2, 2));
        assert_eq!(s.tick(), vec![t(1, 1)]);
        assert_eq!(s.tick(), vec![t(2, 2)]);
        assert_eq!(s.tick(), vec![t(1, 1)]);
    }

    #[test]
    fn multi_cpu_fills_all_slots() {
        let mut s = Scheduler::new(2);
        for i in 1..=3 {
            s.enqueue(t(i, i as u64));
        }
        let running = s.tick();
        assert_eq!(running.len(), 2);
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn cpus_running_counts_per_process() {
        let mut s = Scheduler::new(4);
        s.enqueue(t(1, 1));
        s.enqueue(t(1, 2));
        s.enqueue(t(2, 3));
        s.tick();
        assert_eq!(s.cpus_running(Pid(1)), 2);
        assert_eq!(s.cpus_running(Pid(2)), 1);
        assert_eq!(s.cpus_running(Pid(9)), 0);
    }

    #[test]
    fn remove_process_clears_everywhere() {
        let mut s = Scheduler::new(2);
        s.enqueue(t(1, 1));
        s.enqueue(t(1, 2));
        s.enqueue(t(1, 3));
        s.tick();
        s.remove_process(Pid(1));
        assert_eq!(s.running().len(), 0);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_panics() {
        Scheduler::new(0);
    }
}
