//! Kernel error numbers, mirroring the POSIX errno values that the
//! process-creation APIs return.

use std::fmt;

/// POSIX-style error numbers returned by simulated syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Resource temporarily unavailable (e.g. `RLIMIT_NPROC` hit).
    Eagain,
    /// Out of memory / commit limit exceeded.
    Enomem,
    /// Bad file descriptor.
    Ebadf,
    /// Invalid argument.
    Einval,
    /// No such process.
    Esrch,
    /// No child processes.
    Echild,
    /// Operation not permitted.
    Eperm,
    /// No such file or directory.
    Enoent,
    /// File exists.
    Eexist,
    /// Not a directory.
    Enotdir,
    /// Is a directory.
    Eisdir,
    /// Too many open files (per-process).
    Emfile,
    /// Too many open files (system-wide).
    Enfile,
    /// Resource deadlock would occur.
    Edeadlk,
    /// Bad address.
    Efault,
    /// Exec format error.
    Enoexec,
    /// Argument list too long.
    E2big,
    /// Broken pipe.
    Epipe,
    /// Function not implemented.
    Enosys,
    /// Access denied.
    Eacces,
    /// Resource busy.
    Ebusy,
    /// Interrupted system call.
    Eintr,
    /// I/O error (swap device failure on swap-in).
    Eio,
}

impl Errno {
    /// Short upper-case name, as `strerror` tooling prints it.
    pub fn name(self) -> &'static str {
        match self {
            Errno::Eagain => "EAGAIN",
            Errno::Enomem => "ENOMEM",
            Errno::Ebadf => "EBADF",
            Errno::Einval => "EINVAL",
            Errno::Esrch => "ESRCH",
            Errno::Echild => "ECHILD",
            Errno::Eperm => "EPERM",
            Errno::Enoent => "ENOENT",
            Errno::Eexist => "EEXIST",
            Errno::Enotdir => "ENOTDIR",
            Errno::Eisdir => "EISDIR",
            Errno::Emfile => "EMFILE",
            Errno::Enfile => "ENFILE",
            Errno::Edeadlk => "EDEADLK",
            Errno::Efault => "EFAULT",
            Errno::Enoexec => "ENOEXEC",
            Errno::E2big => "E2BIG",
            Errno::Epipe => "EPIPE",
            Errno::Enosys => "ENOSYS",
            Errno::Eacces => "EACCES",
            Errno::Ebusy => "EBUSY",
            Errno::Eintr => "EINTR",
            Errno::Eio => "EIO",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::error::Error for Errno {}

impl From<fpr_mem::MemError> for Errno {
    fn from(e: fpr_mem::MemError) -> Errno {
        match e {
            fpr_mem::MemError::OutOfMemory | fpr_mem::MemError::CommitLimit => Errno::Enomem,
            fpr_mem::MemError::Overlap | fpr_mem::MemError::BadAlignment => Errno::Einval,
            fpr_mem::MemError::BadAddress
            | fpr_mem::MemError::NotMapped
            | fpr_mem::MemError::Protection => Errno::Efault,
            fpr_mem::MemError::Fragmented => Errno::Enomem,
            fpr_mem::MemError::SwapIo => Errno::Eio,
        }
    }
}

/// Result alias for simulated syscalls.
pub type KResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display() {
        assert_eq!(Errno::Enomem.name(), "ENOMEM");
        assert_eq!(Errno::Edeadlk.to_string(), "EDEADLK");
    }

    #[test]
    fn mem_error_conversion() {
        assert_eq!(Errno::from(fpr_mem::MemError::OutOfMemory), Errno::Enomem);
        assert_eq!(Errno::from(fpr_mem::MemError::CommitLimit), Errno::Enomem);
        assert_eq!(Errno::from(fpr_mem::MemError::NotMapped), Errno::Efault);
        assert_eq!(Errno::from(fpr_mem::MemError::Overlap), Errno::Einval);
        assert_eq!(Errno::from(fpr_mem::MemError::SwapIo), Errno::Eio);
    }
}
