//! `/proc`-style introspection: textual views of process and machine
//! state, in the familiar Linux formats.
//!
//! Nothing here affects behaviour — it renders the state the rest of the
//! kernel maintains, and the examples/tests use it to *show* what fork
//! duplicated.

use crate::error::KResult;
use crate::kernel::Kernel;
use crate::pid::Pid;
use crate::task::ProcState;
use fpr_mem::{VmaKind, PAGE_SIZE};
use std::fmt::Write as _;

impl Kernel {
    /// Renders `/proc/<pid>/maps`: one line per VMA.
    pub fn proc_maps(&self, pid: Pid) -> KResult<String> {
        let p = self.process(pid)?;
        let mut out = String::new();
        for v in p.aspace.vmas() {
            let perms = format!(
                "{}{}{}{}",
                if v.prot.read { 'r' } else { '-' },
                if v.prot.write { 'w' } else { '-' },
                if v.prot.exec { 'x' } else { '-' },
                match v.share {
                    fpr_mem::Share::Private => 'p',
                    fpr_mem::Share::Shared => 's',
                },
            );
            let label = match v.kind {
                VmaKind::Text => "[text]",
                VmaKind::Data => "[data]",
                VmaKind::Heap => "[heap]",
                VmaKind::Stack => "[stack]",
                VmaKind::Guard => "[guard]",
                VmaKind::Mmap => "",
            };
            let mut flags = String::new();
            if v.fork_policy.dont_fork {
                flags.push_str(" dontfork");
            }
            if v.fork_policy.wipe_on_fork {
                flags.push_str(" wipeonfork");
            }
            let _ = writeln!(
                out,
                "{:012x}-{:012x} {} {:>8} {}{}",
                v.start.0 * PAGE_SIZE,
                v.end().0 * PAGE_SIZE,
                perms,
                v.pages,
                label,
                flags,
            );
        }
        Ok(out)
    }

    /// Renders `/proc/<pid>/status`: identity, state, memory and thread
    /// summary.
    pub fn proc_status(&self, pid: Pid) -> KResult<String> {
        let p = self.process(pid)?;
        let state = match p.state {
            ProcState::Running => "R (running)",
            ProcState::Zombie(_) => "Z (zombie)",
        };
        let mut out = String::new();
        let _ = writeln!(out, "Name:\t{}", p.name);
        let _ = writeln!(out, "State:\t{state}");
        let _ = writeln!(out, "Pid:\t{}", p.pid.0);
        let _ = writeln!(out, "PPid:\t{}", p.ppid.0);
        let _ = writeln!(out, "Uid:\t{}\t{}", p.cred.uid, p.cred.euid);
        let _ = writeln!(
            out,
            "VmSize:\t{} kB",
            p.aspace.virtual_pages() * PAGE_SIZE / 1024
        );
        let _ = writeln!(out, "VmRSS:\t{} kB", p.resident_pages() * PAGE_SIZE / 1024);
        let _ = writeln!(
            out,
            "VmSwap:\t{} kB",
            p.aspace.swapped_pages() * PAGE_SIZE / 1024
        );
        let _ = writeln!(
            out,
            "AnonHugePages:\t{} kB",
            p.aspace.huge_pages() * fpr_mem::HUGE_PAGE_SIZE / 1024
        );
        let _ = writeln!(out, "Threads:\t{}", p.threads.len());
        let _ = writeln!(out, "FDSize:\t{}", p.fds.open_count());
        let _ = writeln!(out, "SigBlk:\t{}", blocked_count(p));
        Ok(out)
    }

    /// Renders `/proc/meminfo`: machine memory summary.
    pub fn proc_meminfo(&self) -> String {
        let total = self.phys.total_frames() * PAGE_SIZE / 1024;
        let free = self.phys.free_frames() * PAGE_SIZE / 1024;
        let committed = self.commit.committed() * PAGE_SIZE / 1024;
        let swap_total = self.phys.swap().capacity() * PAGE_SIZE / 1024;
        let swap_free = self.phys.swap().free_slots() * PAGE_SIZE / 1024;
        let thp = self.phys.thp_stats();
        format!(
            "MemTotal:\t{total} kB\nMemFree:\t{free} kB\nSwapTotal:\t{swap_total} kB\n\
             SwapFree:\t{swap_free} kB\nCommitted_AS:\t{committed} kB\n\
             THP:\tpromoted {} demoted {} failed {}\n",
            thp.promoted, thp.demoted, thp.failed
        )
    }

    /// Renders `/proc/pressure/memory` (PSI): the share of simulated
    /// cycles spent stalled in reclaim instead of making progress. The
    /// simulation has no wall clock, so the three Linux averaging windows
    /// collapse to a single whole-run average; `total` is stall cycles
    /// (Linux reports microseconds).
    pub fn proc_pressure_memory(&self) -> String {
        let stalled = self.phys.stall_cycles_total();
        let pct = 100.0 * stalled as f64 / self.cycles.total().max(1) as f64;
        format!(
            "some avg10={pct:.2} avg60={pct:.2} avg300={pct:.2} total={stalled}\n\
             full avg10={pct:.2} avg60={pct:.2} avg300={pct:.2} total={stalled}\n"
        )
    }

    /// Renders a one-line-per-process table (a minimal `ps`).
    pub fn ps(&self) -> String {
        let mut out = String::from("  PID  PPID NTH    RSS STAT NAME\n");
        for pid in self.pids() {
            let p = match self.process(pid) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let stat = match p.state {
                ProcState::Running => "R",
                ProcState::Zombie(_) => "Z",
            };
            let _ = writeln!(
                out,
                "{:>5} {:>5} {:>3} {:>6} {:>4} {}",
                p.pid.0,
                p.ppid.0,
                p.threads.len(),
                p.resident_pages(),
                stat,
                p.name,
            );
        }
        out
    }
}

fn blocked_count(p: &crate::task::Process) -> usize {
    crate::signal::ALL_SIGS
        .iter()
        .filter(|s| p.signals.is_blocked(**s))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_mem::{Prot, Share};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn maps_shows_vmas_with_perms_and_policy() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 8, Prot::RW, Share::Private).unwrap();
        k.madvise(p, base, 4, crate::mm::Madvice::WipeOnFork)
            .unwrap();
        let maps = k.proc_maps(p).unwrap();
        assert!(maps.contains("rw-p"));
        assert!(maps.contains("wipeonfork"));
        assert_eq!(maps.lines().count(), 2, "split into policy + rest");
    }

    #[test]
    fn status_reports_identity_and_memory() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 16, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 4).unwrap();
        let st = k.proc_status(p).unwrap();
        assert!(st.contains("Name:\tinit"));
        assert!(st.contains("State:\tR (running)"));
        assert!(st.contains("VmSize:\t64 kB"));
        assert!(st.contains("VmRSS:\t16 kB"));
        assert!(st.contains("FDSize:\t3"));
    }

    #[test]
    fn meminfo_tracks_commit() {
        let (mut k, p) = boot();
        let before = k.proc_meminfo();
        assert!(before.contains("Committed_AS:\t0 kB"));
        k.mmap_anon(p, 256, Prot::RW, Share::Private).unwrap();
        let after = k.proc_meminfo();
        assert!(after.contains("Committed_AS:\t1024 kB"));
    }

    #[test]
    fn meminfo_and_status_report_swap() {
        let mut k = Kernel::new(crate::kernel::MachineConfig {
            swap_slots: 64,
            ..Default::default()
        });
        let p = k.create_init("init").unwrap();
        let mem = k.proc_meminfo();
        assert!(mem.contains("SwapTotal:\t256 kB"));
        assert!(mem.contains("SwapFree:\t256 kB"));
        let st = k.proc_status(p).unwrap();
        assert!(st.contains("VmSwap:\t0 kB"));
    }

    #[test]
    fn status_and_meminfo_report_thp() {
        let mut k = Kernel::new(crate::kernel::MachineConfig {
            thp: true,
            ..Default::default()
        });
        let p = k.create_init("init").unwrap();
        let base = k.mmap_anon(p, 512, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 512).unwrap();
        let st = k.proc_status(p).unwrap();
        assert!(
            st.contains("AnonHugePages:\t2048 kB"),
            "one 2 MiB block promoted:\n{st}"
        );
        let mem = k.proc_meminfo();
        assert!(
            mem.contains("THP:\tpromoted 1 demoted 0 failed 0"),
            "machine-wide THP counters:\n{mem}"
        );
    }

    #[test]
    fn thp_off_reports_zero_huge_pages() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 512, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 512).unwrap();
        let st = k.proc_status(p).unwrap();
        assert!(st.contains("AnonHugePages:\t0 kB"));
        let mem = k.proc_meminfo();
        assert!(mem.contains("THP:\tpromoted 0 demoted 0 failed 0"));
    }

    #[test]
    fn pressure_memory_reports_stalls() {
        let (mut k, p) = boot();
        let idle = k.proc_pressure_memory();
        assert!(idle.starts_with("some avg10=0.00"));
        assert!(idle.contains("full avg10=0.00"));
        let base = k.mmap_anon(p, 4, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 4).unwrap();
        k.phys.note_stall(1_000_000_000);
        let stalled = k.proc_pressure_memory();
        assert!(stalled.contains("total=1000000000"));
        assert!(!stalled.contains("avg10=0.00"));
    }

    #[test]
    fn ps_lists_zombies() {
        let (mut k, init) = boot();
        let c = k.allocate_process(init, "dead").unwrap();
        k.exit(c, 1).unwrap();
        let ps = k.ps();
        assert!(ps.contains("dead"));
        assert!(ps
            .lines()
            .any(|l| l.contains(" Z ") || l.ends_with("Z dead") || l.contains("Z dead")));
    }
}
