//! # fpr-kernel — the simulated kernel for the *fork() in the road*
//! reproduction
//!
//! Everything a process-creation API needs to exist on top of: a process
//! table with PID/TID allocation, per-process address spaces (from
//! [`fpr_mem`]), descriptor tables over a shared open-file-description
//! table, an in-memory VFS, pipes, user-space buffered streams, signals,
//! threads with owner-tracked locks, a round-robin scheduler, resource
//! limits, and an OOM killer.
//!
//! Deliberately, `fork` is **not** a method of [`kernel::Kernel`]. The
//! paper's thesis is that fork is an API choice layered over more basic
//! kernel operations — so the five creation APIs live in the `fpr-api`
//! crate and are built from the plumbing exported here
//! ([`kernel::Kernel::allocate_process`],
//! [`kernel::Kernel::clone_address_space`],
//! [`kernel::Kernel::clone_fd_table`], …).

pub mod atfork;
pub mod cred;
pub mod error;
pub mod fdtable;
pub mod file;
pub mod invariants;
pub mod io;
pub mod kernel;
pub mod lifecycle;
pub mod mm;
pub mod pgroup;
pub mod pid;
pub mod pipe;
pub mod procfs;
pub mod reclaim;
pub mod rlimit;
pub mod sched;
pub mod signal;
pub mod stdio;
pub mod sync;
pub mod task;
pub mod thread;
pub mod time;
pub mod timer;
pub mod vfs;

pub use atfork::{AtforkPhase, AtforkRegistration, AtforkTable};
pub use cred::{Caps, Credentials};
pub use error::{Errno, KResult};
pub use fdtable::{Fd, FdEntry, FdTable, STDERR, STDIN, STDOUT};
pub use file::{FileObject, OfdId, OpenFlags};
pub use invariants::KernelBaseline;
pub use io::ReadResult;
pub use kernel::{Kernel, MachineConfig, SmpShared};
pub use lifecycle::{OomDecision, OomGuard, OOM_EXIT_STATUS, SIGBUS_EXIT_STATUS};
pub use mm::Madvice;
pub use pgroup::{Pgid, Sid};
pub use pid::{Pid, ShardedPidTable, Tid};
pub use reclaim::{ReclaimStats, Shrinker, ShrinkerHandle};
pub use rlimit::{Resource, Rlimit, RlimitSet};
pub use sched::{PerCpuQueues, Scheduler, Task};
pub use signal::{Disposition, HandlerId, Sig, SignalState};
pub use stdio::{BufMode, UserStream};
pub use sync::{LockId, LockTable};
pub use task::{LayoutInfo, ProcState, Process, SpaceRef, OOM_SCORE_ADJ_MIN};
pub use thread::{Thread, ThreadState};
