//! Fault-plan property tests at the kernel layer.
//!
//! A random schedule of process-creation and descriptor syscalls runs
//! under a random [`FaultPlan`] (seed-driven cases, as in the other
//! proptests). Before every call the test snapshots
//! [`Kernel::baseline`]; any call that returns `Err` must leave the PID
//! table, descriptor tables, pipes, inodes, frame and commit accounting
//! exactly at that baseline ([`Kernel::leak_check`]) with the structural
//! invariants ([`Kernel::check_invariants`]) intact — an injected fault
//! anywhere inside a syscall must behave like the syscall never started.

use fpr_faults::{with_plan, FaultPlan};
use fpr_kernel::{Errno, Fd, Kernel, OpenFlags, Pid};
use fpr_mem::{ForkMode, Prot, Share, Vpn};
use fpr_rng::Rng;

const CASES: u64 = 48;
const MAX_PROCS: usize = 6;

#[derive(Debug, Clone)]
enum Op {
    MiniFork { proc: u64, eager: bool },
    Open { proc: u64, create: bool },
    Close { proc: u64, fd: u8 },
    Dup2 { proc: u64, old: u8, new: u8 },
    Pipe { proc: u64 },
    Mmap { proc: u64, pages: u64 },
    WriteMem { proc: u64, vpn: u64 },
}

fn gen_op(rng: &mut Rng) -> Op {
    let proc = rng.gen_u64();
    match rng.gen_below(8) {
        0 | 1 => Op::MiniFork {
            proc,
            eager: rng.gen_bool(0.3),
        },
        2 => Op::Open {
            proc,
            create: rng.gen_bool(0.7),
        },
        3 => Op::Close {
            proc,
            fd: rng.gen_below(12) as u8,
        },
        4 => Op::Dup2 {
            proc,
            old: rng.gen_below(12) as u8,
            new: rng.gen_below(12) as u8,
        },
        5 => Op::Pipe { proc },
        6 => Op::Mmap {
            proc,
            pages: rng.gen_range(1, 12),
        },
        _ => Op::WriteMem {
            proc,
            vpn: rng.gen_below(64),
        },
    }
}

/// The transactional fork skeleton every creation API shares: identity,
/// address space, descriptors — abort on any failure.
fn mini_fork(k: &mut Kernel, parent: Pid, mode: ForkMode) -> Result<Pid, Errno> {
    let child = k.allocate_process(parent, "child")?;
    match k.clone_address_space(parent, mode) {
        Ok(s) => k.process_mut(child).expect("child just made").aspace = s,
        Err(e) => {
            k.abort_process_creation(child).expect("abort is infallible here");
            return Err(e);
        }
    }
    match k.clone_fd_table(parent) {
        Ok(f) => k.process_mut(child).expect("child just made").fds = f,
        Err(e) => {
            k.abort_process_creation(child).expect("abort is infallible here");
            return Err(e);
        }
    }
    Ok(child)
}

/// Under a random fault plan, every `Err` restores the pre-call
/// baseline and every state — success or failure — keeps the
/// structural invariants.
#[test]
fn faulty_schedules_restore_the_baseline_on_err() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xFB_0000 + case);
        let ops: Vec<Op> = (0..rng.gen_range(10, 50)).map(|_| gen_op(&mut rng)).collect();
        let plan = FaultPlan::random(rng.gen_u64(), 170);
        // Setup runs outside the plan scope — only the schedule is faulty.
        let mut k = Kernel::boot();
        let init = k.create_init("init").expect("init");
        let mut procs: Vec<Pid> = vec![init];
        with_plan(plan, || {
            for (i, op) in ops.iter().enumerate() {
                let pid = procs[pick(op) as usize % procs.len()];
                let base = k.baseline();
                let failed = match op {
                    Op::MiniFork { eager, .. } => {
                        let mode = if *eager { ForkMode::Eager } else { ForkMode::Cow };
                        match mini_fork(&mut k, pid, mode) {
                            Ok(child) => {
                                if procs.len() < MAX_PROCS {
                                    procs.push(child);
                                    false
                                } else {
                                    // Roll the extra child straight back —
                                    // itself a baseline-restoring path.
                                    k.abort_process_creation(child).expect("abort");
                                    true
                                }
                            }
                            Err(_) => true,
                        }
                    }
                    Op::Open { create, .. } => {
                        k.open(pid, "/shared.txt", OpenFlags::RDWR, *create).is_err()
                    }
                    Op::Close { fd, .. } => k.close(pid, Fd(*fd as u32)).is_err(),
                    Op::Dup2 { old, new, .. } => {
                        k.dup2(pid, Fd(*old as u32), Fd(*new as u32)).is_err()
                    }
                    Op::Pipe { .. } => k.pipe(pid).is_err(),
                    Op::Mmap { pages, .. } => {
                        k.mmap_anon(pid, *pages, Prot::RW, Share::Private).is_err()
                    }
                    Op::WriteMem { vpn, .. } => k.write_mem(pid, Vpn(*vpn), 7).is_err(),
                };
                if failed {
                    if let Err(v) = k.leak_check(&base) {
                        panic!(
                            "case {case} op {i} ({op:?}): Err did not restore baseline:\n  {}",
                            v.join("\n  ")
                        );
                    }
                }
                if let Err(v) = k.check_invariants() {
                    panic!(
                        "case {case} op {i} ({op:?}): invariants broken:\n  {}",
                        v.join("\n  ")
                    );
                }
            }
        });
    }
}

fn pick(op: &Op) -> u64 {
    match op {
        Op::MiniFork { proc, .. }
        | Op::Open { proc, .. }
        | Op::Close { proc, .. }
        | Op::Dup2 { proc, .. }
        | Op::Pipe { proc }
        | Op::Mmap { proc, .. }
        | Op::WriteMem { proc, .. } => *proc,
    }
}
