//! Model-based randomized tests for the descriptor layer: the kernel's
//! fd-table/OFD/pipe machinery is driven with random syscall sequences
//! and compared against a trivially correct in-memory model. Cases
//! derive from explicit `fpr_rng` seeds, so any failure replays exactly.

use fpr_kernel::{Errno, Fd, Kernel, OpenFlags, Pid, ReadResult};
use fpr_rng::Rng;
use std::collections::HashMap;

const CASES: u64 = 64;

#[derive(Debug, Clone)]
enum FdOp {
    Open,
    Close(u8),
    Dup(u8),
    Dup2(u8, u8),
    WriteFd(u8, Vec<u8>),
    Pipe,
    PipeWrite(u8, Vec<u8>),
    PipeRead(u8, u8),
    SetCloexec(u8, bool),
}

fn gen_bytes(rng: &mut Rng, lo: u64, hi: u64) -> Vec<u8> {
    (0..rng.gen_range(lo, hi))
        .map(|_| rng.gen_u64() as u8)
        .collect()
}

fn gen_op(rng: &mut Rng) -> FdOp {
    match rng.gen_below(9) {
        0 => FdOp::Open,
        1 => FdOp::Close(rng.gen_u64() as u8),
        2 => FdOp::Dup(rng.gen_u64() as u8),
        3 => FdOp::Dup2(rng.gen_u64() as u8, rng.gen_u64() as u8),
        4 => {
            let fd = rng.gen_u64() as u8;
            let data = gen_bytes(rng, 0, 16);
            FdOp::WriteFd(fd, data)
        }
        5 => FdOp::Pipe,
        6 => {
            let fd = rng.gen_u64() as u8;
            let data = gen_bytes(rng, 1, 16);
            FdOp::PipeWrite(fd, data)
        }
        7 => FdOp::PipeRead(rng.gen_u64() as u8, rng.gen_range(1, 32) as u8),
        _ => FdOp::SetCloexec(rng.gen_u64() as u8, rng.gen_bool(0.5)),
    }
}

/// What the model believes a descriptor is.
#[derive(Debug, Clone, PartialEq)]
enum ModelFd {
    File { written: Vec<u8> },
    PipeR(u32),
    PipeW(u32),
    Tty { writable: bool },
}

/// The kernel's descriptor table agrees with a naive model about which
/// descriptors are open and what kind of object they reference, and pipe
/// data is FIFO-exact.
#[test]
fn fd_layer_matches_model() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xFD_0000 + case);
        let ops: Vec<FdOp> = (0..rng.gen_range(1, 60)).map(|_| gen_op(&mut rng)).collect();

        let mut k = Kernel::boot();
        let init: Pid = k.create_init("init").unwrap();
        // The model mirrors descriptors; stdio 0..2 are Tty.
        let mut model: HashMap<u32, ModelFd> = HashMap::new();
        model.insert(0, ModelFd::Tty { writable: false });
        model.insert(1, ModelFd::Tty { writable: true });
        model.insert(2, ModelFd::Tty { writable: true });
        let mut pipe_bufs: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut next_pipe = 0u32;
        let mut file_counter = 0u32;

        let lowest_free = |m: &HashMap<u32, ModelFd>| (0..).find(|i| !m.contains_key(i)).unwrap();

        for op in ops {
            match op {
                FdOp::Open => {
                    file_counter += 1;
                    let path = format!("/f{file_counter}");
                    let fd = k.open(init, &path, OpenFlags::RDWR, true).unwrap();
                    let expect = lowest_free(&model);
                    assert_eq!(fd.0, expect, "case {case}: POSIX lowest-fd rule");
                    model.insert(fd.0, ModelFd::File { written: Vec::new() });
                }
                FdOp::Close(fd) => {
                    let r = k.close(init, Fd(fd as u32));
                    match model.remove(&(fd as u32)) {
                        Some(_) => assert!(r.is_ok(), "case {case}"),
                        None => assert_eq!(r, Err(Errno::Ebadf), "case {case}"),
                    }
                }
                FdOp::Dup(fd) => {
                    let r = k.dup(init, Fd(fd as u32));
                    match model.get(&(fd as u32)).cloned() {
                        Some(obj) => {
                            let new = r.unwrap();
                            let expect = lowest_free(&model);
                            assert_eq!(new.0, expect, "case {case}");
                            model.insert(new.0, obj);
                        }
                        None => assert_eq!(r, Err(Errno::Ebadf), "case {case}"),
                    }
                }
                FdOp::Dup2(old, newfd) => {
                    // Keep targets inside NOFILE.
                    let newfd = (newfd % 64) as u32;
                    let r = k.dup2(init, Fd(old as u32), Fd(newfd));
                    match model.get(&(old as u32)).cloned() {
                        Some(obj) => {
                            assert_eq!(r, Ok(Fd(newfd)), "case {case}");
                            model.insert(newfd, obj);
                        }
                        None => assert_eq!(r, Err(Errno::Ebadf), "case {case}"),
                    }
                }
                FdOp::WriteFd(fd, data) => {
                    let r = k.write_fd(init, Fd(fd as u32), &data);
                    match model.get_mut(&(fd as u32)) {
                        Some(ModelFd::File { written }) => {
                            assert_eq!(r, Ok(data.len()), "case {case}");
                            // Offset is shared through dups; the model only
                            // tracks total bytes for files written through
                            // a single descriptor chain, so just extend.
                            written.extend_from_slice(&data);
                        }
                        Some(ModelFd::Tty { writable: true }) => {
                            assert_eq!(r, Ok(data.len()), "case {case}");
                        }
                        Some(ModelFd::Tty { writable: false }) => {
                            assert_eq!(r, Err(Errno::Ebadf), "case {case}");
                        }
                        Some(ModelFd::PipeW(p)) => {
                            let accepted = r.unwrap();
                            let p = *p;
                            pipe_bufs
                                .get_mut(&p)
                                .unwrap()
                                .extend_from_slice(&data[..accepted]);
                        }
                        Some(ModelFd::PipeR(_)) => assert_eq!(r, Err(Errno::Ebadf), "case {case}"),
                        None => assert_eq!(r, Err(Errno::Ebadf), "case {case}"),
                    }
                }
                FdOp::Pipe => {
                    let (r, w) = k.pipe(init).unwrap();
                    let a = lowest_free(&model);
                    model.insert(a, ModelFd::PipeR(next_pipe));
                    let b = lowest_free(&model);
                    model.insert(b, ModelFd::PipeW(next_pipe));
                    assert_eq!((r.0, w.0), (a, b), "case {case}");
                    pipe_bufs.insert(next_pipe, Vec::new());
                    next_pipe += 1;
                }
                FdOp::PipeWrite(fd, data) => {
                    if let Some(ModelFd::PipeW(p)) = model.get(&(fd as u32)).cloned() {
                        let accepted = k.write_fd(init, Fd(fd as u32), &data).unwrap();
                        pipe_bufs
                            .get_mut(&p)
                            .unwrap()
                            .extend_from_slice(&data[..accepted]);
                    }
                }
                FdOp::PipeRead(fd, n) => {
                    if let Some(ModelFd::PipeR(p)) = model.get(&(fd as u32)).cloned() {
                        match k.read_fd(init, Fd(fd as u32), n as usize).unwrap() {
                            ReadResult::Data(d) => {
                                let buf = pipe_bufs.get_mut(&p).unwrap();
                                assert!(d.len() <= buf.len(), "case {case}");
                                let expect: Vec<u8> = buf.drain(..d.len()).collect();
                                assert_eq!(d, expect, "case {case}: pipe is FIFO-exact");
                            }
                            ReadResult::WouldBlock => {
                                assert!(pipe_bufs[&p].is_empty(), "case {case}");
                                let writers = model
                                    .values()
                                    .filter(|m| matches!(m, ModelFd::PipeW(q) if *q == p))
                                    .count();
                                assert!(writers > 0, "case {case}: no writers should mean EOF");
                            }
                            ReadResult::Eof => {
                                assert!(pipe_bufs[&p].is_empty(), "case {case}");
                                let writers = model
                                    .values()
                                    .filter(|m| matches!(m, ModelFd::PipeW(q) if *q == p))
                                    .count();
                                assert_eq!(writers, 0, "case {case}: EOF only once writers gone");
                            }
                        }
                    }
                }
                FdOp::SetCloexec(fd, b) => {
                    let r = k.set_cloexec(init, Fd(fd as u32), b);
                    assert_eq!(r.is_ok(), model.contains_key(&(fd as u32)), "case {case}");
                }
            }
            // Global invariant: open count matches the model.
            assert_eq!(
                k.process(init).unwrap().fds.open_count(),
                model.len(),
                "case {case}: open-descriptor count diverged"
            );
        }
        // Teardown closes everything and leaks nothing.
        k.exit(init, 0).unwrap();
        assert_eq!(k.ofds.live(), 0, "case {case}");
        assert_eq!(k.pipes.live(), 0, "case {case}");
    }
}
