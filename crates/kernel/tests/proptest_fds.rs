//! Model-based property tests for the descriptor layer: the kernel's
//! fd-table/OFD/pipe machinery is driven with random syscall sequences
//! and compared against a trivially correct in-memory model.

use fpr_kernel::{Errno, Fd, Kernel, OpenFlags, Pid, ReadResult};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum FdOp {
    Open,
    Close(u8),
    Dup(u8),
    Dup2(u8, u8),
    WriteFd(u8, Vec<u8>),
    Pipe,
    PipeWrite(u8, Vec<u8>),
    PipeRead(u8, u8),
    SetCloexec(u8, bool),
}

fn op_strategy() -> impl Strategy<Value = FdOp> {
    prop_oneof![
        Just(FdOp::Open),
        any::<u8>().prop_map(FdOp::Close),
        any::<u8>().prop_map(FdOp::Dup),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| FdOp::Dup2(a, b)),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(fd, d)| FdOp::WriteFd(fd, d)),
        Just(FdOp::Pipe),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..16))
            .prop_map(|(fd, d)| FdOp::PipeWrite(fd, d)),
        (any::<u8>(), 1u8..32).prop_map(|(fd, n)| FdOp::PipeRead(fd, n)),
        (any::<u8>(), any::<bool>()).prop_map(|(fd, b)| FdOp::SetCloexec(fd, b)),
    ]
}

/// What the model believes a descriptor is.
#[derive(Debug, Clone, PartialEq)]
enum ModelFd {
    File { written: Vec<u8> },
    PipeR(u32),
    PipeW(u32),
    Tty { writable: bool },
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The kernel's descriptor table agrees with a naive model about
    /// which descriptors are open and what kind of object they reference,
    /// and pipe data is FIFO-exact.
    #[test]
    fn fd_layer_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut k = Kernel::boot();
        let init: Pid = k.create_init("init").unwrap();
        // The model mirrors descriptors; stdio 0..2 are Tty.
        let mut model: HashMap<u32, ModelFd> = HashMap::new();
        model.insert(0, ModelFd::Tty { writable: false });
        model.insert(1, ModelFd::Tty { writable: true });
        model.insert(2, ModelFd::Tty { writable: true });
        let mut pipe_bufs: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut next_pipe = 0u32;
        let mut file_counter = 0u32;

        let lowest_free = |m: &HashMap<u32, ModelFd>| (0..).find(|i| !m.contains_key(i)).unwrap();

        for op in ops {
            match op {
                FdOp::Open => {
                    file_counter += 1;
                    let path = format!("/f{file_counter}");
                    let fd = k.open(init, &path, OpenFlags::RDWR, true).unwrap();
                    let expect = lowest_free(&model);
                    prop_assert_eq!(fd.0, expect, "POSIX lowest-fd rule");
                    model.insert(fd.0, ModelFd::File { written: Vec::new() });
                }
                FdOp::Close(fd) => {
                    let r = k.close(init, Fd(fd as u32));
                    match model.remove(&(fd as u32)) {
                        Some(_) => prop_assert!(r.is_ok()),
                        None => prop_assert_eq!(r, Err(Errno::Ebadf)),
                    }
                }
                FdOp::Dup(fd) => {
                    let r = k.dup(init, Fd(fd as u32));
                    match model.get(&(fd as u32)).cloned() {
                        Some(obj) => {
                            let new = r.unwrap();
                            let expect = lowest_free(&model);
                            prop_assert_eq!(new.0, expect);
                            model.insert(new.0, obj);
                        }
                        None => prop_assert_eq!(r, Err(Errno::Ebadf)),
                    }
                }
                FdOp::Dup2(old, newfd) => {
                    // Keep targets inside NOFILE.
                    let newfd = (newfd % 64) as u32;
                    let r = k.dup2(init, Fd(old as u32), Fd(newfd));
                    match model.get(&(old as u32)).cloned() {
                        Some(obj) => {
                            prop_assert_eq!(r, Ok(Fd(newfd)));
                            model.insert(newfd, obj);
                        }
                        None => prop_assert_eq!(r, Err(Errno::Ebadf)),
                    }
                }
                FdOp::WriteFd(fd, data) => {
                    let r = k.write_fd(init, Fd(fd as u32), &data);
                    match model.get_mut(&(fd as u32)) {
                        Some(ModelFd::File { written }) => {
                            prop_assert_eq!(r, Ok(data.len()));
                            // Offset is shared through dups; the model only
                            // tracks total bytes for files written through
                            // a single descriptor chain, so just extend.
                            written.extend_from_slice(&data);
                        }
                        Some(ModelFd::Tty { writable: true }) => {
                            prop_assert_eq!(r, Ok(data.len()));
                        }
                        Some(ModelFd::Tty { writable: false }) => {
                            prop_assert_eq!(r, Err(Errno::Ebadf));
                        }
                        Some(ModelFd::PipeW(p)) => {
                            let accepted = r.unwrap();
                            let p = *p;
                            pipe_bufs.get_mut(&p).unwrap().extend_from_slice(&data[..accepted]);
                        }
                        Some(ModelFd::PipeR(_)) => prop_assert_eq!(r, Err(Errno::Ebadf)),
                        None => prop_assert_eq!(r, Err(Errno::Ebadf)),
                    }
                }
                FdOp::Pipe => {
                    let (r, w) = k.pipe(init).unwrap();
                    let a = lowest_free(&model);
                    model.insert(a, ModelFd::PipeR(next_pipe));
                    let b = lowest_free(&model);
                    model.insert(b, ModelFd::PipeW(next_pipe));
                    prop_assert_eq!((r.0, w.0), (a, b));
                    pipe_bufs.insert(next_pipe, Vec::new());
                    next_pipe += 1;
                }
                FdOp::PipeWrite(fd, data) => {
                    if let Some(ModelFd::PipeW(p)) = model.get(&(fd as u32)).cloned() {
                        let accepted = k.write_fd(init, Fd(fd as u32), &data).unwrap();
                        pipe_bufs.get_mut(&p).unwrap().extend_from_slice(&data[..accepted]);
                    }
                }
                FdOp::PipeRead(fd, n) => {
                    if let Some(ModelFd::PipeR(p)) = model.get(&(fd as u32)).cloned() {
                        match k.read_fd(init, Fd(fd as u32), n as usize).unwrap() {
                            ReadResult::Data(d) => {
                                let buf = pipe_bufs.get_mut(&p).unwrap();
                                prop_assert!(d.len() <= buf.len());
                                let expect: Vec<u8> = buf.drain(..d.len()).collect();
                                prop_assert_eq!(d, expect, "pipe is FIFO-exact");
                            }
                            ReadResult::WouldBlock => {
                                prop_assert!(pipe_bufs[&p].is_empty());
                                let writers = model
                                    .values()
                                    .filter(|m| matches!(m, ModelFd::PipeW(q) if *q == p))
                                    .count();
                                prop_assert!(writers > 0, "no writers should mean EOF");
                            }
                            ReadResult::Eof => {
                                prop_assert!(pipe_bufs[&p].is_empty());
                                let writers = model
                                    .values()
                                    .filter(|m| matches!(m, ModelFd::PipeW(q) if *q == p))
                                    .count();
                                prop_assert_eq!(writers, 0, "EOF only once writers are gone");
                            }
                        }
                    }
                }
                FdOp::SetCloexec(fd, b) => {
                    let r = k.set_cloexec(init, Fd(fd as u32), b);
                    prop_assert_eq!(r.is_ok(), model.contains_key(&(fd as u32)));
                }
            }
            // Global invariant: open count matches the model.
            prop_assert_eq!(
                k.process(init).unwrap().fds.open_count(),
                model.len(),
                "open-descriptor count diverged"
            );
        }
        // Teardown closes everything and leaks nothing.
        k.exit(init, 0).unwrap();
        prop_assert_eq!(k.ofds.live(), 0);
        prop_assert_eq!(k.pipes.live(), 0);
    }
}
