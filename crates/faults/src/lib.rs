//! # fpr-faults — deterministic, seedable fault injection
//!
//! The paper's complaint about fork is not just that it is slow — it is
//! that it *fails late and messily*: every subsystem must know how to
//! duplicate and un-duplicate itself, and the un-duplicate paths almost
//! never execute in testing. This crate makes those paths executable on
//! demand.
//!
//! ## Model
//!
//! Instrumented allocation paths (frame allocation, page-table node
//! allocation, VMA clone, PID/FD allocation, VFS ops, spawn file actions,
//! xproc population steps) call [`cross`] with a named [`FaultSite`].
//! A [`FaultPlan`] addresses sites by `(site, nth-occurrence)` — or by
//! global crossing index — and is installed for the dynamic extent of one
//! operation with [`with_plan`]. The run returns a [`FaultTrace`] listing
//! every crossing in order, so a harness can:
//!
//! 1. run an operation once under an empty plan to learn the K injection
//!    points it crosses, then
//! 2. replay it K times, failing at each point in turn, asserting a clean
//!    `Err` and an intact kernel every time.
//!
//! Everything is deterministic: no clocks, no global RNG. Random plans
//! ([`FaultPlan::random`]) derive from an explicit `u64` seed via an
//! embedded SplitMix64 step, so any failing schedule replays exactly.
//!
//! ## Coverage
//!
//! Independent of any active plan, `cross` keeps cumulative per-thread
//! counters of crossings and injections per site ([`coverage`]). The
//! audit crate turns these into an *untested-error-path lint*: a site a
//! workload crossed but never failed is an error path that has never
//! executed.
//!
//! The state is thread-local; the simulator is single-threaded per
//! kernel, and this keeps parallel test binaries from interfering. SMP
//! storms get a machine-wide view on top: workers call
//! [`flush_coverage`] before finishing and the driver reads
//! [`global_coverage`] after join, so a concurrent sweep can assert
//! which sites the whole machine crossed and injected. Per-cell plans
//! derive from one root seed via [`derive_cell_seed`] /
//! [`FaultPlan::random_for_cell`], keeping every thread's schedule
//! deterministic and replayable.
//!
//! ## Observers
//!
//! A thread-local [`Observer`] can be installed with [`set_observer`] to
//! mirror every crossing into another subsystem — the tracing sink in
//! `fpr-trace` uses this to turn each fault-site hit into a trace event,
//! so no fault path is silent.
//!
//! ## Example
//!
//! ```
//! use fpr_faults::{cross, with_plan, FaultPlan, FaultSite};
//!
//! // Fail the second frame allocation the operation attempts.
//! let plan = FaultPlan::passive().fail_at(FaultSite::FrameAlloc, 1);
//! let (results, trace) = with_plan(plan, || {
//!     (0..3).map(|_| cross(FaultSite::FrameAlloc)).collect::<Vec<_>>()
//! });
//! assert!(results[0].is_ok() && results[2].is_ok());
//! assert!(results[1].is_err());
//! assert_eq!(trace.len(), 3);
//! assert_eq!(trace.injected().len(), 1);
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Declares [`FaultSite`] once; the enum, [`FaultSite::ALL`],
/// [`FaultSite::COUNT`], [`FaultSite::index`] and [`FaultSite::name`] are
/// all derived from the single variant list, so a new site *cannot* be
/// added without automatically joining every sweep and coverage report —
/// there is no hand-maintained array left to forget to update.
macro_rules! fault_sites {
    ($( $(#[$doc:meta])* $variant:ident => $name:literal, )+) => {
        /// A named fault-injection site: one class of allocation that can fail.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(usize)]
        pub enum FaultSite {
            $( $(#[$doc])* $variant, )+
        }

        impl FaultSite {
            /// Number of [`FaultSite`] variants, derived from the
            /// declaration list itself.
            pub const COUNT: usize = [$(FaultSite::$variant,)+].len();

            /// Every site, in declaration order (used by sweeps and
            /// coverage reports). Derived, not hand-maintained: it is the
            /// same list the enum is generated from.
            pub const ALL: [FaultSite; FaultSite::COUNT] = [$(FaultSite::$variant,)+];

            /// Position of this site in [`FaultSite::ALL`] (the enum
            /// discriminant — declaration order by construction).
            pub const fn index(self) -> usize {
                self as usize
            }

            /// Stable snake_case name (report/JSON key).
            pub fn name(self) -> &'static str {
                match self {
                    $( FaultSite::$variant => $name, )+
                }
            }
        }
    };
}

fault_sites! {
    /// Physical frame allocation (`fpr-mem::phys`).
    FrameAlloc => "frame_alloc",
    /// Page-table intermediate node allocation (`fpr-mem::page_table`).
    PtNodeAlloc => "pt_node_alloc",
    /// Per-VMA clone step during address-space fork (`fpr-mem::address_space`).
    VmaClone => "vma_clone",
    /// Commit-accounting charge (`fpr-mem::overcommit`).
    CommitCharge => "commit_charge",
    /// PID allocation (`fpr-kernel::pid`).
    PidAlloc => "pid_alloc",
    /// Descriptor-table slot installation (`fpr-kernel::fdtable`).
    FdAlloc => "fd_alloc",
    /// VFS operation needing kernel memory (`fpr-kernel::vfs`).
    VfsOp => "vfs_op",
    /// One `posix_spawn` file action (`fpr-api::spawn`).
    SpawnFileAction => "spawn_file_action",
    /// One xproc `ProcessBuilder` population step (`fpr-api::xproc`).
    XprocStep => "xproc_step",
    /// Deferred page-table subtree copy during on-demand fork
    /// (`fpr-mem::page_table`): the private leaf node allocated when a
    /// shared subtree is first written, unmapped, or reprotected.
    PtUnshare => "pt_unshare",
    /// Pinning a freshly loaded executable's segment frames into the
    /// exec image cache (`fpr-exec::cache`).
    ImageCacheInsert => "image_cache_insert",
    /// Checking a pre-warmed child out of the spawn warm pool
    /// (`fpr-api::fastpath`).
    PoolCheckout => "pool_checkout",
    /// One shrinker invocation of the memory-pressure reclaim pass
    /// (`fpr-kernel::reclaim`). Crossed for every shrinker *before* any
    /// shrinker mutates, so an injected failure aborts the whole pass
    /// with the kernel byte-identical to before it.
    ReclaimShrink => "reclaim_shrink",
    /// Draining warm-pool children under memory pressure
    /// (`fpr-api::fastpath`): the pool shrinker's work-list setup,
    /// crossed before any parked child is torn down.
    PoolDrain => "pool_drain",
    /// Allocating a swap slot from the device bitmap during a swap-out
    /// pass (`fpr-mem::swap`). An injected failure aborts the pass with
    /// every already-reserved slot returned — the kernel stays
    /// byte-identical.
    SwapSlotAlloc => "swap_slot_alloc",
    /// The swap-out pass itself (`fpr-kernel::reclaim`), crossed once
    /// per pass before any page table or frame is touched, so an
    /// injected failure aborts the pass byte-identically.
    SwapOut => "swap_out",
    /// Reading a page back from the swap device on a major fault
    /// (`fpr-mem::swap`). An injected failure models a device I/O error
    /// and surfaces as SIGBUS-style death of the faulting process only.
    SwapIn => "swap_in",
    /// Collapsing 512 small PTEs into one 2 MiB huge leaf
    /// (`fpr-mem::page_table`). Promotion is strictly optional, so an
    /// injected failure is *absorbed*: the operation succeeds with small
    /// pages and the kernel is byte-identical to the un-promoted world.
    PtPromote => "pt_promote",
    /// Splitting one 2 MiB huge leaf back into 512 small PTEs
    /// (`fpr-mem::page_table`), crossed before any PTE or frame mutates,
    /// so an injected failure fails the enclosing operation cleanly with
    /// the huge mapping intact.
    PtDemote => "pt_demote",
    /// Refilling a cell's frame magazine from the machine-wide
    /// `SharedFramePool` (`fpr-mem::phys`), crossed before the buddy
    /// lock is taken. SMP-only: single-kernel machines never refill a
    /// magazine, so the single-threaded world replays byte-identically.
    PoolRefill => "pool_refill",
    /// Evacuating a fail-stopped kernel cell (`fpr-kernel::lifecycle`),
    /// crossed before any process is killed, so an injected failure
    /// leaves the dying cell untouched and cleanly retryable.
    CellEvacuate => "cell_evacuate",
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An injected failure: which site fired and which occurrence it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: FaultSite,
    /// 0-based occurrence index of that site within the active scope.
    pub occurrence: u64,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}#{}", self.site, self.occurrence)
    }
}

/// Which crossings of which sites should fail.
///
/// Occurrence indices are 0-based and scoped to one [`with_plan`] run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    per_site: BTreeMap<FaultSite, BTreeSet<u64>>,
    global: BTreeSet<u64>,
    random: Option<RandomMode>,
}

#[derive(Debug, Clone, Copy)]
struct RandomMode {
    seed: u64,
    /// Probability of failing each crossing, in parts per 1024.
    per_1024: u16,
}

impl FaultPlan {
    /// A plan that injects nothing (counting/tracing runs).
    pub fn passive() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fails the `nth` (0-based) crossing of `site`.
    pub fn fail_at(mut self, site: FaultSite, nth: u64) -> FaultPlan {
        self.per_site.entry(site).or_default().insert(nth);
        self
    }

    /// Fails the `nth` (0-based) crossing of *any* site — the sweep
    /// primitive: count K crossings once, then replay failing 0..K.
    pub fn fail_nth_crossing(mut self, nth: u64) -> FaultPlan {
        self.global.insert(nth);
        self
    }

    /// Fails each crossing independently with probability
    /// `per_1024 / 1024`, deterministically derived from `seed`.
    pub fn random(seed: u64, per_1024: u16) -> FaultPlan {
        FaultPlan {
            random: Some(RandomMode {
                seed,
                per_1024: per_1024.min(1024),
            }),
            ..FaultPlan::default()
        }
    }

    /// A [`FaultPlan::random`] plan for one SMP cell, seeded from a
    /// single machine-wide root seed via [`derive_cell_seed`]. Every
    /// cell's schedule is deterministic, distinct, and reconstructible
    /// from `(root_seed, cell)` alone — the concurrent faultsweep logs
    /// only the root seed.
    pub fn random_for_cell(root_seed: u64, cell: usize, per_1024: u16) -> FaultPlan {
        FaultPlan::random(derive_cell_seed(root_seed, cell), per_1024)
    }

    /// True if the plan can never inject.
    pub fn is_passive(&self) -> bool {
        self.per_site.is_empty() && self.global.is_empty() && self.random.is_none()
    }

    fn wants(&self, site: FaultSite, occurrence: u64, global_index: u64) -> bool {
        if self.global.contains(&global_index) {
            return true;
        }
        if let Some(set) = self.per_site.get(&site) {
            if set.contains(&occurrence) {
                return true;
            }
        }
        if let Some(r) = self.random {
            // One SplitMix64 step keyed by (seed, global index): stateless,
            // so the decision for crossing N never depends on history.
            let mut z = r
                .seed
                .wrapping_add((global_index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            return (z & 1023) < r.per_1024 as u64;
        }
        false
    }
}

/// One site crossing observed during a [`with_plan`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crossing {
    /// The site crossed.
    pub site: FaultSite,
    /// 0-based occurrence index of this site within the run.
    pub occurrence: u64,
    /// 0-based index among all crossings of the run.
    pub global_index: u64,
    /// Whether the plan made this crossing fail.
    pub injected: bool,
}

/// Ordered record of every crossing of one [`with_plan`] run.
#[derive(Debug, Clone, Default)]
pub struct FaultTrace {
    /// Crossings in execution order.
    pub crossings: Vec<Crossing>,
}

impl FaultTrace {
    /// Total crossings (the K of a fail-each-point sweep).
    pub fn len(&self) -> usize {
        self.crossings.len()
    }

    /// True if the operation crossed no instrumented site.
    pub fn is_empty(&self) -> bool {
        self.crossings.is_empty()
    }

    /// Crossings that actually injected.
    pub fn injected(&self) -> Vec<Crossing> {
        self.crossings.iter().copied().filter(|c| c.injected).collect()
    }

    /// Distinct sites crossed, in stable order.
    pub fn sites(&self) -> Vec<FaultSite> {
        let set: BTreeSet<FaultSite> = self.crossings.iter().map(|c| c.site).collect();
        set.into_iter().collect()
    }
}

/// Cumulative per-site counters (per thread, across all scopes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteCoverage {
    /// Times the site was crossed.
    pub crossings: u64,
    /// Times a fault was injected at the site.
    pub injections: u64,
}

struct ActiveScope {
    plan: FaultPlan,
    counts: BTreeMap<FaultSite, u64>,
    total: u64,
    trace: FaultTrace,
}

#[derive(Default)]
struct ThreadState {
    scope: Option<ActiveScope>,
    coverage: BTreeMap<FaultSite, SiteCoverage>,
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::default());
    static OBSERVER: RefCell<Option<Observer>> = const { RefCell::new(None) };
}

/// A thread-local crossing callback: `(site, occurrence, injected)`.
///
/// Inside a [`with_plan`] scope `occurrence` is the 0-based per-site
/// index within that scope; outside any scope it is the cumulative
/// per-thread coverage count minus one. The callback must not call
/// [`cross`] itself — a reentrant crossing runs unobserved.
pub type Observer = Box<dyn FnMut(FaultSite, u64, bool)>;

/// Installs (or, with `None`, removes) this thread's crossing observer,
/// returning the previous one so scoped users can restore it.
///
/// ```
/// use std::cell::Cell;
/// use std::rc::Rc;
/// use fpr_faults::{cross, set_observer, FaultSite};
///
/// let seen = Rc::new(Cell::new(0u64));
/// let s = Rc::clone(&seen);
/// let prev = set_observer(Some(Box::new(move |_, _, _| s.set(s.get() + 1))));
/// cross(FaultSite::VfsOp).unwrap();
/// set_observer(prev);
/// assert_eq!(seen.get(), 1);
/// ```
pub fn set_observer(observer: Option<Observer>) -> Option<Observer> {
    OBSERVER.with(|o| std::mem::replace(&mut *o.borrow_mut(), observer))
}

/// Declares that execution reached `site`. Instrumented code calls this
/// and propagates `Err` as its own "allocation failed" error.
///
/// Outside any [`with_plan`] scope this only updates coverage counters
/// and always succeeds.
pub fn cross(site: FaultSite) -> Result<(), InjectedFault> {
    let (result, occurrence, injected) = STATE.with(|s| {
        let mut st = s.borrow_mut();
        let cov = st.coverage.entry(site).or_default();
        cov.crossings += 1;
        let cumulative = cov.crossings - 1;
        let Some(scope) = st.scope.as_mut() else {
            return (Ok(()), cumulative, false);
        };
        // counts[site] holds the last occurrence index handed out; the
        // first crossing of a site is occurrence 0.
        let occurrence = *scope
            .counts
            .entry(site)
            .and_modify(|c| *c += 1)
            .or_insert(0);
        let global_index = scope.total;
        scope.total += 1;
        let injected = scope.plan.wants(site, occurrence, global_index);
        scope.trace.crossings.push(Crossing {
            site,
            occurrence,
            global_index,
            injected,
        });
        if injected {
            st.coverage.get_mut(&site).expect("entry above").injections += 1;
            (Err(InjectedFault { site, occurrence }), occurrence, true)
        } else {
            (Ok(()), occurrence, false)
        }
    });
    // Notify outside the STATE borrow so the observer may inspect
    // coverage; it is taken out for the call so a reentrant crossing
    // cannot double-borrow.
    let mut observer = OBSERVER.with(|o| o.borrow_mut().take());
    if let Some(f) = observer.as_mut() {
        f(site, occurrence, injected);
    }
    if observer.is_some() {
        OBSERVER.with(|o| {
            let mut slot = o.borrow_mut();
            if slot.is_none() {
                *slot = observer;
            }
        });
    }
    result
}

/// Runs `f` with `plan` active, returning its result and the full
/// crossing trace. Scopes do not nest: a nested call panics, because a
/// nested plan would silently steal the outer plan's occurrence counting.
pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> (R, FaultTrace) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        assert!(
            st.scope.is_none(),
            "fpr-faults: with_plan scopes do not nest"
        );
        st.scope = Some(ActiveScope {
            plan,
            counts: BTreeMap::new(),
            total: 0,
            trace: FaultTrace::default(),
        });
    });
    // Even if `f` panics we must clear the scope, or every later test in
    // this thread inherits a stale plan.
    struct ClearOnDrop;
    impl Drop for ClearOnDrop {
        fn drop(&mut self) {
            STATE.with(|s| s.borrow_mut().scope = None);
        }
    }
    let guard = ClearOnDrop;
    let out = f();
    let trace = STATE.with(|s| {
        s.borrow_mut()
            .scope
            .take()
            .map(|sc| sc.trace)
            .unwrap_or_default()
    });
    drop(guard);
    (out, trace)
}

/// Convenience: runs `f` under a passive plan and returns only the trace.
pub fn count_crossings(f: impl FnOnce()) -> FaultTrace {
    with_plan(FaultPlan::passive(), f).1
}

/// Cumulative coverage for this thread, keyed by site (stable order).
pub fn coverage() -> Vec<(FaultSite, SiteCoverage)> {
    STATE.with(|s| {
        let st = s.borrow();
        FaultSite::ALL
            .iter()
            .map(|&site| (site, st.coverage.get(&site).copied().unwrap_or_default()))
            .collect()
    })
}

/// Clears this thread's cumulative coverage counters.
pub fn reset_coverage() {
    STATE.with(|s| s.borrow_mut().coverage.clear());
}

/// Derives a per-cell fault seed from one machine-wide root seed: a
/// single SplitMix64 step keyed by `(root_seed, cell + 1)`, the same
/// mixer [`FaultPlan::random`] uses per crossing. Cells get decorrelated
/// schedules while the whole storm remains replayable from `root_seed`.
pub fn derive_cell_seed(root_seed: u64, cell: usize) -> u64 {
    let mut z = root_seed.wrapping_add((cell as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn global_coverage_registry() -> &'static std::sync::Mutex<BTreeMap<FaultSite, SiteCoverage>> {
    static REGISTRY: std::sync::OnceLock<std::sync::Mutex<BTreeMap<FaultSite, SiteCoverage>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| std::sync::Mutex::new(BTreeMap::new()))
}

/// Merges this thread's cumulative coverage into the process-wide
/// registry and clears the thread-local counters. SMP storm workers call
/// this before finishing so [`global_coverage`] sees the whole machine;
/// single-threaded code never needs it.
pub fn flush_coverage() {
    let local = STATE.with(|s| std::mem::take(&mut s.borrow_mut().coverage));
    if local.is_empty() {
        return;
    }
    let mut global = global_coverage_registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (site, cov) in local {
        let g = global.entry(site).or_default();
        g.crossings += cov.crossings;
        g.injections += cov.injections;
    }
}

/// Machine-wide coverage: the sum of every [`flush_coverage`] call plus
/// the calling thread's (unflushed) counters, keyed by site in stable
/// order. The SMP analogue of [`coverage`].
pub fn global_coverage() -> Vec<(FaultSite, SiteCoverage)> {
    let global = global_coverage_registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    STATE.with(|s| {
        let st = s.borrow();
        FaultSite::ALL
            .iter()
            .map(|&site| {
                let mut cov = global.get(&site).copied().unwrap_or_default();
                if let Some(local) = st.coverage.get(&site) {
                    cov.crossings += local.crossings;
                    cov.injections += local.injections;
                }
                (site, cov)
            })
            .collect()
    })
}

/// Clears the process-wide coverage registry *and* the calling thread's
/// counters (other threads' unflushed counters are untouched).
pub fn reset_global_coverage() {
    global_coverage_registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    reset_coverage();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_exhaustive_and_ordered() {
        // `index()` is an exhaustive match, so a new variant cannot
        // compile without an index; this assertion then forces `ALL` (and
        // `COUNT`) to carry every variant exactly once, in index order.
        assert_eq!(FaultSite::ALL.len(), FaultSite::COUNT);
        for (i, site) in FaultSite::ALL.iter().enumerate() {
            assert_eq!(
                site.index(),
                i,
                "FaultSite::ALL[{i}] is {site}, whose index() is {}",
                site.index()
            );
        }
        // The SMP sites (E17) are registered like any other: reachable
        // by index, named, and therefore swept by every harness that
        // iterates `ALL`.
        assert!(FaultSite::ALL.contains(&FaultSite::PoolRefill));
        assert!(FaultSite::ALL.contains(&FaultSite::CellEvacuate));
        assert_eq!(FaultSite::PoolRefill.name(), "pool_refill");
        assert_eq!(FaultSite::CellEvacuate.name(), "cell_evacuate");
    }

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut seen = BTreeSet::new();
        for site in FaultSite::ALL {
            assert!(seen.insert(site.name()), "duplicate name {}", site.name());
            assert!(site
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn passive_plan_injects_nothing_but_traces() {
        let ((), trace) = with_plan(FaultPlan::passive(), || {
            for _ in 0..3 {
                cross(FaultSite::FrameAlloc).unwrap();
            }
            cross(FaultSite::PidAlloc).unwrap();
        });
        assert_eq!(trace.len(), 4);
        assert!(trace.injected().is_empty());
        assert_eq!(
            trace.sites(),
            vec![FaultSite::FrameAlloc, FaultSite::PidAlloc]
        );
    }

    #[test]
    fn fail_at_hits_exactly_the_nth_occurrence() {
        let plan = FaultPlan::passive().fail_at(FaultSite::FrameAlloc, 2);
        let (results, trace) = with_plan(plan, || {
            (0..4).map(|_| cross(FaultSite::FrameAlloc)).collect::<Vec<_>>()
        });
        assert!(results[0].is_ok() && results[1].is_ok() && results[3].is_ok());
        assert_eq!(
            results[2],
            Err(InjectedFault {
                site: FaultSite::FrameAlloc,
                occurrence: 2
            })
        );
        assert_eq!(trace.injected().len(), 1);
        assert_eq!(trace.injected()[0].global_index, 2);
    }

    #[test]
    fn occurrence_counting_is_per_site() {
        let plan = FaultPlan::passive().fail_at(FaultSite::PidAlloc, 0);
        let (results, _) = with_plan(plan, || {
            vec![
                cross(FaultSite::FrameAlloc),
                cross(FaultSite::PidAlloc),
                cross(FaultSite::PidAlloc),
            ]
        });
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "first PidAlloc occurrence fails");
        assert!(results[2].is_ok());
    }

    #[test]
    fn fail_nth_crossing_is_site_agnostic() {
        let plan = FaultPlan::passive().fail_nth_crossing(1);
        let (results, _) = with_plan(plan, || {
            vec![
                cross(FaultSite::FrameAlloc),
                cross(FaultSite::PidAlloc),
                cross(FaultSite::FrameAlloc),
            ]
        });
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn random_plan_is_reproducible() {
        let run = |seed| {
            with_plan(FaultPlan::random(seed, 512), || {
                (0..64)
                    .map(|_| cross(FaultSite::VmaClone).is_err())
                    .collect::<Vec<_>>()
            })
            .0
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
        let hits = run(99).iter().filter(|&&b| b).count();
        assert!(hits > 10 && hits < 54, "p=0.5 over 64 gave {hits}");
    }

    #[test]
    fn outside_scope_cross_succeeds_and_counts_coverage() {
        reset_coverage();
        assert!(cross(FaultSite::VfsOp).is_ok());
        assert!(cross(FaultSite::VfsOp).is_ok());
        let cov = coverage();
        let vfs = cov
            .iter()
            .find(|(s, _)| *s == FaultSite::VfsOp)
            .unwrap()
            .1;
        assert_eq!(vfs.crossings, 2);
        assert_eq!(vfs.injections, 0);
    }

    #[test]
    fn coverage_accumulates_across_scopes() {
        reset_coverage();
        let plan = FaultPlan::passive().fail_at(FaultSite::FdAlloc, 0);
        let _ = with_plan(plan, || {
            let _ = cross(FaultSite::FdAlloc);
        });
        let _ = count_crossings(|| {
            let _ = cross(FaultSite::FdAlloc);
        });
        let fd = coverage()
            .into_iter()
            .find(|(s, _)| *s == FaultSite::FdAlloc)
            .unwrap()
            .1;
        assert_eq!(fd.crossings, 2);
        assert_eq!(fd.injections, 1);
    }

    #[test]
    fn observer_sees_every_crossing_with_injection_flag() {
        use std::cell::RefCell as StdRefCell;
        use std::rc::Rc;
        let seen: Rc<StdRefCell<Vec<(FaultSite, u64, bool)>>> = Rc::default();
        let sink = Rc::clone(&seen);
        let prev = set_observer(Some(Box::new(move |site, occ, injected| {
            sink.borrow_mut().push((site, occ, injected));
        })));
        let plan = FaultPlan::passive().fail_at(FaultSite::FrameAlloc, 1);
        let _ = with_plan(plan, || {
            let _ = cross(FaultSite::FrameAlloc);
            let _ = cross(FaultSite::FrameAlloc);
            let _ = cross(FaultSite::PidAlloc);
        });
        set_observer(prev);
        assert_eq!(
            *seen.borrow(),
            vec![
                (FaultSite::FrameAlloc, 0, false),
                (FaultSite::FrameAlloc, 1, true),
                (FaultSite::PidAlloc, 0, false),
            ]
        );
    }

    #[test]
    fn observer_outside_scope_reports_cumulative_occurrence() {
        reset_coverage();
        use std::cell::Cell;
        use std::rc::Rc;
        let last: Rc<Cell<u64>> = Rc::default();
        let sink = Rc::clone(&last);
        let prev = set_observer(Some(Box::new(move |_, occ, _| sink.set(occ))));
        cross(FaultSite::VfsOp).unwrap();
        cross(FaultSite::VfsOp).unwrap();
        set_observer(prev);
        assert_eq!(last.get(), 1, "second cumulative crossing is occurrence 1");
    }

    #[test]
    fn cell_seeds_are_deterministic_and_decorrelated() {
        assert_eq!(derive_cell_seed(42, 3), derive_cell_seed(42, 3));
        let seeds: BTreeSet<u64> = (0..16).map(|c| derive_cell_seed(42, c)).collect();
        assert_eq!(seeds.len(), 16, "16 cells must get 16 distinct seeds");
        assert_ne!(derive_cell_seed(42, 0), derive_cell_seed(43, 0));
    }

    #[test]
    fn random_for_cell_matches_explicit_derivation() {
        let run = |plan: FaultPlan| {
            with_plan(plan, || {
                (0..64)
                    .map(|_| cross(FaultSite::FrameAlloc).is_err())
                    .collect::<Vec<_>>()
            })
            .0
        };
        let derived = run(FaultPlan::random(derive_cell_seed(7, 2), 256));
        let for_cell = run(FaultPlan::random_for_cell(7, 2, 256));
        assert_eq!(derived, for_cell);
        assert_ne!(
            run(FaultPlan::random_for_cell(7, 0, 256)),
            run(FaultPlan::random_for_cell(7, 1, 256)),
            "sibling cells must not mirror each other's schedules"
        );
    }

    #[test]
    fn flushed_coverage_sums_across_threads() {
        reset_global_coverage();
        let workers: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    reset_coverage();
                    let plan = FaultPlan::passive().fail_at(FaultSite::CellEvacuate, 0);
                    let _ = with_plan(plan, || {
                        for _ in 0..=t {
                            let _ = cross(FaultSite::CellEvacuate);
                        }
                    });
                    flush_coverage();
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let cov = global_coverage()
            .into_iter()
            .find(|(s, _)| *s == FaultSite::CellEvacuate)
            .unwrap()
            .1;
        assert_eq!(cov.crossings, 1 + 2 + 3 + 4);
        assert_eq!(cov.injections, 4, "each worker injected its first crossing");
        // flush_coverage cleared the workers' locals; the registry holds all.
        reset_global_coverage();
        assert!(global_coverage().iter().all(|(_, c)| c.crossings == 0));
    }

    #[test]
    fn scope_cleared_even_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            let _ = with_plan(FaultPlan::passive(), || panic!("boom"));
        });
        assert!(caught.is_err());
        // A fresh scope must be installable afterwards.
        let ((), t) = with_plan(FaultPlan::passive(), || {
            cross(FaultSite::FrameAlloc).unwrap();
        });
        assert_eq!(t.len(), 1);
    }
}
