# Tier-1 verification and common chores. `make verify` is the gate a
# change must pass before it lands: release build, the full workspace
# test suite (including the exhaustive fail-point sweep and the
# baseline/leak-check proptests), and clippy with warnings denied.

CARGO ?= cargo

.PHONY: verify build test clippy leakcheck bench-smoke bench-tables clean

verify: build test clippy bench-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test --workspace -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# The fault-injection acceptance gate on its own: every fail point of
# every creation API must produce a clean error and an intact kernel.
leakcheck:
	$(CARGO) test -q -p fpr-api --test faultsweep
	$(CARGO) test -q -p fpr-kernel --test proptest_faults
	$(CARGO) test -q -p fpr-mem --test proptest_faults

# Non-timing smoke: every fig*/tab* driver runs at reduced size into a
# scratch results dir, each emitted JSON must round-trip through the
# typed readers, and the per-API/mode cycle medians are snapshotted to
# BENCH_fork_modes.json at the repo root.
bench-smoke:
	FORKROAD_RESULTS=target/bench-smoke $(CARGO) run --release -q -p fpr-bench --bin bench_smoke

# Regenerate the paper tables/figures (quick sweeps).
bench-tables:
	$(CARGO) run --release -q -p fpr-bench --bin run_all -- --quick

clean:
	$(CARGO) clean
