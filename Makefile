# Tier-1 verification and common chores. `make verify` is the gate a
# change must pass before it lands: release build, the full workspace
# test suite (including the exhaustive fail-point sweep and the
# baseline/leak-check proptests), clippy with warnings denied, and the
# documentation gates (rustdoc warnings denied, doctests).

CARGO ?= cargo

.PHONY: verify build test clippy doc doctest doclinks leakcheck stress bench-smoke bench-tables trace-demo clean

verify: build test clippy doc doctest doclinks stress bench-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test --workspace -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Rustdoc must build clean: broken intra-doc links, missing docs on
# crates that deny them, and bad code fences all fail the gate.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps -q

# Runnable documentation examples are tests too.
doctest:
	$(CARGO) test --workspace --doc -q

# Markdown is documentation too: every relative link in README/docs
# must resolve and the README <-> ARCHITECTURE <-> OBSERVABILITY <->
# BENCHMARKS cross-reference web must stay intact.
doclinks:
	$(CARGO) test -q -p forkroad --test doc_links

# The fault-injection acceptance gate on its own: every fail point of
# every creation API and of the swap tier (slot alloc, swap-out,
# swap-in) must produce a clean error — or, for a swap-in I/O failure,
# kill only the faulting process — and leave an intact kernel. The
# pressure proptests replay random swap/reclaim schedules under the
# same leak checks, and the SMP sweep (E17) repeats the exercise with
# injections landing concurrently on four real OS threads.
leakcheck:
	$(CARGO) test -q -p fpr-api --test faultsweep
	$(CARGO) test -q -p fpr-kernel --test proptest_faults
	$(CARGO) test -q -p fpr-mem --test proptest_faults
	$(CARGO) test -q -p forkroad-core --test pressure_property
	$(CARGO) test --release -q -p forkroad-core --test smp_faults

# The SMP gate on its own: four real OS threads hammer the shared
# machine with a seeded fork/vfork/spawn/exec storm, then every cell
# must pass check_invariants + leak_check and the shared frame pool
# must conserve; plus the determinism regression — the single-threaded
# E15 service figure must replay byte-identical to the checked-in
# seed results. smp_faults adds E17: the same storm under concurrent
# fault injection (all contained, zero lock-order violations) and a
# mid-storm cell fail-stop that must recover to a clean N-1 quiesce.
# Release mode: the storms are the slow part.
stress:
	$(CARGO) test --release -q -p forkroad-core --test smp_stress
	$(CARGO) test --release -q -p forkroad-core --test smp_faults

# Non-timing smoke: every fig*/tab* driver runs at reduced size into a
# scratch results dir, each emitted JSON must round-trip through the
# typed readers, and the per-API/mode cycle medians are snapshotted to
# BENCH_fork_modes.json at the repo root.
bench-smoke:
	FORKROAD_RESULTS=target/bench-smoke $(CARGO) run --release -q -p fpr-bench --bin bench_smoke

# Regenerate the paper tables/figures (quick sweeps).
bench-tables:
	$(CARGO) run --release -q -p fpr-bench --bin run_all -- --quick

# Record an on-demand fork + exec under the trace sink and export it as
# Chrome trace-event JSON (results/trace_demo.json) plus a text
# flamegraph on stdout. Load the JSON in about:tracing or Perfetto.
trace-demo:
	$(CARGO) run --release -q -p fpr-bench --bin trace_demo

clean:
	$(CARGO) clean
